//! Self-profiling attribution: where engine wall-clock goes, per phase,
//! on an idle-dominated and a busy (saturated) workload — and what the
//! profiling itself costs.
//!
//! A custom harness in the `engine_horizon` mold: for each scenario it
//! runs the fast path with profiling off and on, cross-checks that the
//! simulated outcomes are identical (profiling is a pure observer),
//! medians the wall-clock over reps to get the profiling overhead, and
//! writes per-phase ns/calls/fractions plus the channel airtime
//! breakdown to `BENCH_profile.json`.
//!
//! Env knobs: `BENCH_SMOKE=1` shrinks reps/slots for CI smoke runs;
//! `BENCH_PROFILE_OUT` overrides the output path (default
//! `results/BENCH_profile.json` at the workspace root).

use rmm::mac::ProtocolKind;
use rmm::workload::{run_one, run_one_profiled, Scenario};
use serde::Serialize;
use std::time::Instant;

struct Spec {
    name: &'static str,
    scenario: Scenario,
}

fn specs(smoke: bool) -> Vec<Spec> {
    let slots = |n: u64| if smoke { n / 10 } else { n };
    vec![
        Spec {
            name: "idle_dominated",
            scenario: Scenario {
                n_nodes: 100,
                sim_slots: slots(20_000),
                msg_rate: 5e-5,
                n_runs: 1,
                ..Scenario::default()
            },
        },
        Spec {
            name: "busy_network",
            scenario: Scenario {
                n_nodes: 100,
                sim_slots: slots(10_000),
                msg_rate: 5e-3,
                n_runs: 1,
                ..Scenario::default()
            },
        },
    ]
}

use rmm_bench::{median, percentile};

#[derive(Debug, Serialize)]
struct PhaseRow {
    phase: String,
    ns: u64,
    calls: u64,
    fraction: f64,
}

#[derive(Debug, Serialize)]
struct ScenarioReport {
    name: &'static str,
    nodes: usize,
    sim_slots: u64,
    msg_rate: f64,
    reps: usize,
    /// Median wall-clock of the plain (unprofiled) run, milliseconds.
    plain_ms: f64,
    /// Median wall-clock of the profiled run, milliseconds.
    profiled_ms: f64,
    /// 95th-percentile wall-clock of the plain run, milliseconds
    /// (nearest rank — with few reps this is the worst rep, so
    /// single-rep noise spikes are visible instead of folded into the
    /// median).
    plain_p95_ms: f64,
    /// 95th-percentile wall-clock of the profiled run, milliseconds.
    profiled_p95_ms: f64,
    /// Profiling cost relative to the plain run, percent (of medians).
    overhead_pct: f64,
    /// Per-phase attribution, summed over the profiled reps.
    phases: Vec<PhaseRow>,
    /// Channel airtime breakdown (identical across reps by determinism).
    airtime: rmm::sim::AirtimeBreakdown,
    /// Whether profiled and unprofiled runs simulated the same thing.
    outcomes_match: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    smoke: bool,
    host: rmm_bench::HostMeta,
    scenarios: Vec<ScenarioReport>,
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let reps = if smoke { 3 } else { 7 };
    let seed = 42u64;
    let protocol = ProtocolKind::Bmmm;
    let mut scenarios = Vec::new();
    for spec in specs(smoke) {
        let scenario = &spec.scenario;
        let mut plain_ms = Vec::new();
        let mut profiled_ms = Vec::new();
        let mut merged = rmm::stats::ProfileReport::default();
        let mut outcomes_match = true;
        let mut airtime = None;
        for _ in 0..reps {
            let start = Instant::now();
            let plain = run_one(scenario, protocol, seed);
            plain_ms.push(start.elapsed().as_secs_f64() * 1e3);

            let start = Instant::now();
            let (profiled, report) = run_one_profiled(scenario, protocol, seed);
            profiled_ms.push(start.elapsed().as_secs_f64() * 1e3);

            outcomes_match &= plain.airtime == profiled.airtime
                && plain.collisions == profiled.collisions
                && serde_json::to_string(&plain.group_metrics).expect("metrics serialize")
                    == serde_json::to_string(&profiled.group_metrics).expect("metrics serialize");
            merged.merge(&report);
            airtime = Some(profiled.airtime);
        }
        let plain_med = median(&plain_ms);
        let profiled_med = median(&profiled_ms);
        let phases = merged
            .phases
            .iter()
            .map(|p| PhaseRow {
                phase: p.name.clone(),
                ns: p.ns,
                calls: p.calls,
                fraction: p.ns as f64 / merged.total_ns.max(1) as f64,
            })
            .collect();
        let report = ScenarioReport {
            name: spec.name,
            nodes: scenario.n_nodes,
            sim_slots: scenario.sim_slots,
            msg_rate: scenario.msg_rate,
            reps,
            plain_ms: plain_med,
            profiled_ms: profiled_med,
            plain_p95_ms: percentile(&plain_ms, 0.95),
            profiled_p95_ms: percentile(&profiled_ms, 0.95),
            overhead_pct: 100.0 * (profiled_med - plain_med) / plain_med.max(1e-9),
            phases,
            airtime: airtime.expect("at least one rep"),
            outcomes_match,
        };
        let hottest = report
            .phases
            .iter()
            .max_by_key(|p| p.ns)
            .expect("phases non-empty");
        eprintln!(
            "[profile_attribution] {:<15} plain {:>7.1} ms | profiled {:>7.1} ms | overhead {:>5.1}% | hottest {} ({:.1}%) | deterministic: {}",
            report.name,
            report.plain_ms,
            report.profiled_ms,
            report.overhead_pct,
            hottest.phase,
            hottest.fraction * 100.0,
            report.outcomes_match,
        );
        assert!(
            report.outcomes_match,
            "{}: profiling perturbed the simulation",
            report.name
        );
        scenarios.push(report);
    }
    let report = Report {
        bench: "profile_attribution",
        smoke,
        host: rmm_bench::host_meta(),
        scenarios,
    };
    let out = std::env::var("BENCH_PROFILE_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../results/BENCH_profile.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write BENCH_profile.json");
    eprintln!("[profile_attribution] wrote {out}");
}
