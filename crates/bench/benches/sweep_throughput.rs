//! Sweep throughput: serial (`--jobs 1`) vs parallel (`--jobs N`)
//! execution of the same seed sweep through the fleet pool.
//!
//! A custom harness in the `engine_horizon` mold: it times
//! `run_many_jobs` at one worker and at the machine's core count,
//! cross-checks that the two produce byte-identical results (the
//! fleet's determinism contract), and writes the wall-clock numbers to
//! `BENCH_sweep.json` so the perf trajectory is machine-readable.
//! On a single-core box the speedup honestly reports ~1.0; the ≥2.5×
//! target applies on 4+ cores.
//!
//! Env knobs: `BENCH_SMOKE=1` shrinks runs/slots for CI smoke runs;
//! `BENCH_SWEEP_OUT` overrides the output path (default
//! `results/BENCH_sweep.json` at the workspace root).

use rmm::fleet::{hex, Fnv1a};
use rmm::mac::ProtocolKind;
use rmm::workload::{run_many_jobs, RunResult, Scenario};
use serde::Serialize;
use std::time::Instant;

/// Digest of everything a sweep *simulated*, for the serial-vs-parallel
/// determinism cross-check. Covers every result field except the run
/// provenance (`RunResult::manifest` records wall-clock phases, which
/// legitimately vary between repetitions). Serde's canonical float
/// formatting makes this sensitive to any bit-level drift.
fn digest(results: &[RunResult]) -> String {
    let mut h = Fnv1a::new();
    for r in results {
        h.write_u64(r.seed);
        h.write_u64(r.mean_degree.to_bits());
        h.write_u64(r.utilization.to_bits());
        h.write_u64(r.collisions);
        for part in [
            serde_json::to_string(&r.group_metrics),
            serde_json::to_string(&r.unicast_metrics),
            serde_json::to_string(&r.messages),
            serde_json::to_string(&r.frames),
            serde_json::to_string(&r.stalls),
        ] {
            h.write_str(&part.expect("result field serializes"));
        }
    }
    hex(h.finish())
}

use rmm_bench::median;

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    smoke: bool,
    host: rmm_bench::HostMeta,
    cores: usize,
    workers: usize,
    n_runs: usize,
    sim_slots: u64,
    reps: usize,
    serial_ms: f64,
    parallel_ms: f64,
    /// Serial/parallel wall-clock ratio. On a single-core host this is
    /// not a parallel speedup at all — both configurations run the same
    /// one-worker schedule — so consumers must gate on `single_core`
    /// before reading anything into it.
    speedup: f64,
    /// True when the host exposes only one core: the speedup column is
    /// pure scheduling noise there, and perf gates should skip it.
    single_core: bool,
    digests_match: bool,
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let reps = if smoke { 3 } else { 5 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scenario = Scenario {
        n_runs: if smoke { 8 } else { 24 },
        sim_slots: if smoke { 1_500 } else { 4_000 },
        ..Scenario::default()
    };
    let seed_base = 42u64;

    // Warm-up run (pulls the binary/pages in), also the digest baseline.
    let baseline = run_many_jobs(&scenario, ProtocolKind::Bmmm, seed_base, 1);
    let baseline_digest = digest(&baseline);

    let mut serial_ms = Vec::new();
    let mut parallel_ms = Vec::new();
    let mut digests_match = true;
    for _ in 0..reps {
        let start = Instant::now();
        let serial = run_many_jobs(&scenario, ProtocolKind::Bmmm, seed_base, 1);
        serial_ms.push(start.elapsed().as_secs_f64() * 1e3);
        digests_match &= digest(&serial) == baseline_digest;

        let start = Instant::now();
        let parallel = run_many_jobs(&scenario, ProtocolKind::Bmmm, seed_base, cores);
        parallel_ms.push(start.elapsed().as_secs_f64() * 1e3);
        digests_match &= digest(&parallel) == baseline_digest;
    }

    let serial_med = median(&serial_ms);
    let parallel_med = median(&parallel_ms);
    let report = Report {
        bench: "sweep_throughput",
        smoke,
        host: rmm_bench::host_meta(),
        cores,
        workers: cores,
        n_runs: scenario.n_runs,
        sim_slots: scenario.sim_slots,
        reps,
        serial_ms: serial_med,
        parallel_ms: parallel_med,
        speedup: serial_med / parallel_med,
        single_core: cores == 1,
        digests_match,
    };
    eprintln!(
        "[sweep_throughput] {} runs × {} slots on {} core(s): serial {:>8.1} ms | parallel {:>8.1} ms | {:.2}x | deterministic: {}",
        report.n_runs,
        report.sim_slots,
        report.cores,
        report.serial_ms,
        report.parallel_ms,
        report.speedup,
        report.digests_match,
    );
    if report.single_core {
        eprintln!(
            "[sweep_throughput] single-core host: the speedup column is noise, not parallel scaling"
        );
    }
    assert!(
        report.digests_match,
        "parallel sweep diverged from the serial baseline"
    );
    let out = std::env::var("BENCH_SWEEP_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../results/BENCH_sweep.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write BENCH_sweep.json");
    eprintln!("[sweep_throughput] wrote {out}");
}
