//! Figure 7: successful delivery rate vs service timeout (100–300
//! slots). Regenerates the series, asserting the paper's monotone trend,
//! then benchmarks the timeout-300 configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use rmm::prelude::*;
use rmm_bench::{bench_scenario, of, protocol_series};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut bmmm_rates = Vec::new();
    for timeout in [100u64, 200, 300] {
        let s = bench_scenario().with_timeout(timeout);
        let series = protocol_series(&s, &format!("fig7 timeout={timeout}"), |m| m.delivery_rate);
        // BMMM/LAMM dominate BMW/BSMA at every timeout.
        assert!(of(&series, ProtocolKind::Bmmm) > of(&series, ProtocolKind::Bmw));
        assert!(of(&series, ProtocolKind::Lamm) > of(&series, ProtocolKind::Bsma));
        bmmm_rates.push(of(&series, ProtocolKind::Bmmm));
    }
    // Larger timeout → higher delivery rate.
    assert!(
        bmmm_rates[2] >= bmmm_rates[0],
        "timeout 300 should beat timeout 100: {bmmm_rates:?}"
    );

    let s = bench_scenario().with_timeout(300);
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("bmmm_timeout300_run", |b| {
        b.iter(|| run_one(black_box(&s), ProtocolKind::Bmmm, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
