//! Figures 6a/6b: successful delivery rate vs density and load.
//! Regenerates both series at bench scale (asserting the paper's
//! ranking), then benchmarks one full simulation run per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmm::prelude::*;
use rmm_bench::{bench_scenario, of, protocol_series};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Figure 6a: density axis (node count sweep).
    for nodes in [40usize, 80, 120] {
        let s = bench_scenario().with_nodes(nodes);
        let series = protocol_series(&s, &format!("fig6a nodes={nodes}"), |m| m.delivery_rate);
        // Paper ranking: LAMM ≥ BMMM >> BSMA, BMW.
        assert!(of(&series, ProtocolKind::Lamm) + 0.05 >= of(&series, ProtocolKind::Bmmm));
        assert!(of(&series, ProtocolKind::Bmmm) > of(&series, ProtocolKind::Bmw));
    }
    // Figure 6b: load axis.
    for rate in [2.5e-4, 1e-3] {
        let s = bench_scenario().with_rate(rate);
        let series = protocol_series(&s, &format!("fig6b rate={rate:.1e}"), |m| m.delivery_rate);
        assert!(of(&series, ProtocolKind::Bmmm) > of(&series, ProtocolKind::Bmw));
    }

    // Wall-clock of one seeded run per protocol at the paper's density.
    let s = Scenario {
        n_runs: 1,
        sim_slots: 2_000,
        ..Scenario::default()
    };
    let mut g = c.benchmark_group("fig6_run_one");
    g.sample_size(10);
    for p in rmm_bench::PROTOCOLS {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| run_one(black_box(&s), p, 1))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
