//! Table 1: expected contention phases before the sender sends data.
//! Prints the reproduced rows, then benchmarks the analysis kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use rmm::analysis::contention::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate Table 1 (paper: 1.00/1.00/1.05/3.27 and …/4.08).
    for &(q, n, cover) in &[(0.05, 5usize, 4usize), (0.05, 10, 6)] {
        let row = table1(q, n, cover);
        eprintln!(
            "[table1] q={q} n={n} |S'|={cover}: BMMM={:.2} LAMM={:.2} BMW={:.2} BSMA={:.2}",
            row.bmmm, row.lamm, row.bmw, row.bsma
        );
        assert!((row.bmmm - 1.0).abs() < 0.01);
        assert!((row.bmw - 1.05).abs() < 0.01);
    }

    c.bench_function("table1_row", |b| {
        b.iter(|| table1(black_box(0.05), black_box(10), black_box(6)))
    });
    c.bench_function("table1_bsma_n50", |b| {
        b.iter(|| rmm::analysis::bsma_phases_before_data(black_box(0.05), black_box(50)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
