//! Figures 10a/10b: average multicast completion time vs density and
//! load. Regenerates both series (asserting LAMM ≤ BMMM < BMW), then
//! benchmarks the engine's slot throughput under each protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmm::mac::MacNode;
use rmm::prelude::*;
use rmm_bench::{bench_scenario, of, protocol_series};

fn bench(c: &mut Criterion) {
    for nodes in [40usize, 120] {
        let s = bench_scenario().with_nodes(nodes);
        let series = protocol_series(&s, &format!("fig10a nodes={nodes}"), |m| {
            m.avg_completion_time
        });
        // Paper: LAMM completes fastest of the reliable set.
        assert!(
            of(&series, ProtocolKind::Lamm) <= of(&series, ProtocolKind::Bmmm) + 2.0,
            "LAMM should not be slower than BMMM"
        );
        // BMW is slowest where its completion times are not censored by
        // the timeout. At high density only BMW's fastest messages
        // complete at all (its delivery rate collapses — Figure 6a), so
        // its *mean over completions* shrinks; the paper's own Section
        // 7.3 caveat that completion time must be read jointly with
        // delivery rate. Assert the uncensored regime only.
        if nodes <= 60 {
            assert!(of(&series, ProtocolKind::Bmmm) < of(&series, ProtocolKind::Bmw));
        }
    }
    for rate in [2.5e-4, 1e-3] {
        let s = bench_scenario().with_rate(rate);
        let series = protocol_series(&s, &format!("fig10b rate={rate:.1e}"), |m| {
            m.avg_completion_time
        });
        assert!(of(&series, ProtocolKind::Bmmm) < of(&series, ProtocolKind::Bmw));
    }

    // Engine slot throughput: how many simulated slots per second the
    // substrate sustains under each protocol's frame load.
    let mut g = c.benchmark_group("fig10_engine_throughput");
    g.sample_size(10);
    let slots = 2_000u64;
    g.throughput(Throughput::Elements(slots));
    for p in rmm_bench::PROTOCOLS {
        g.bench_with_input(BenchmarkId::from_parameter(p.name()), &p, |b, &p| {
            b.iter(|| {
                let topo = rmm::workload::uniform_square(60, 0.2, 1);
                let mut nodes = MacNode::build_network(&topo, p, Default::default(), 1);
                let mut engine = Engine::new(topo.clone(), Capture::ZorziRao, 1);
                let mut traffic = rmm::workload::TrafficGen::new(5e-4, Default::default(), 1);
                let mut arrivals = Vec::new();
                for t in 0..slots {
                    traffic.tick(engine.topology(), t, &mut arrivals);
                    for a in &arrivals {
                        nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
                    }
                    engine.step(&mut nodes);
                }
                engine.now()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
