//! Figure 5: expected total contention phases vs n at p = 0.9.
//! Prints the three series (BMW linear, BMMM/LAMM sub-linear), then
//! benchmarks the recursion and the LAMM Monte Carlo.

use criterion::{criterion_group, criterion_main, Criterion};
use rmm::analysis::{
    bmmm_expected_total_phases, bmw_expected_total_phases, lamm_expected_total_phases,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let p = 0.9;
    for n in [1usize, 5, 10, 15, 20] {
        let bmw = bmw_expected_total_phases(n, p);
        let bmmm = bmmm_expected_total_phases(n, p);
        let lamm = lamm_expected_total_phases(n, p, 0.2, 300, 42);
        eprintln!("[fig5] n={n:>2}: BMW={bmw:.2} BMMM={bmmm:.2} LAMM={lamm:.2}");
        // The figure's shape: BMW dominates, BMMM/LAMM stay low.
        if n >= 5 {
            assert!(bmmm < bmw / 2.0);
            assert!(lamm <= bmmm * 1.1);
        }
    }

    c.bench_function("fig5_bmmm_recursion_n20", |b| {
        b.iter(|| bmmm_expected_total_phases(black_box(20), black_box(0.9)))
    });
    c.bench_function("fig5_lamm_mc_n10_t100", |b| {
        b.iter(|| lamm_expected_total_phases(black_box(10), 0.9, 0.2, 100, 42))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
