//! Engine stepping benchmarks: naive slot-by-slot stepping vs. the
//! event-horizon fast path, on three workloads (idle-dominated,
//! busy/saturated, and the paper's Table 2 scale).
//!
//! Unlike the figure benches this is a custom harness: it emits
//! `BENCH_engine.json` (median ns/slot per mode, speedup, and the
//! slots-skipped ratio) so the perf trajectory is machine-readable.
//! The naive numbers in the same file are the baseline the speedup is
//! measured against; a determinism cross-check guards the comparison.
//!
//! Env knobs: `BENCH_SMOKE=1` shrinks reps/slots for CI smoke runs;
//! `BENCH_ENGINE_OUT` overrides the output path (default
//! `results/BENCH_engine.json` at the workspace root).

use rmm::mac::{MacNode, MacTiming, ProtocolKind};
use rmm::sim::{Engine, Slot, Topology};
use rmm::workload::traffic::Arrival;
use rmm::workload::{uniform_square, Scenario, TrafficGen};
use serde::Serialize;
use std::time::Instant;

struct Spec {
    name: &'static str,
    scenario: Scenario,
}

fn specs(smoke: bool) -> Vec<Spec> {
    let slots = |n: u64| if smoke { n / 10 } else { n };
    vec![
        Spec {
            name: "idle_dominated",
            scenario: Scenario {
                n_nodes: 100,
                sim_slots: slots(20_000),
                msg_rate: 5e-5,
                ..Scenario::default()
            },
        },
        Spec {
            name: "busy_network",
            scenario: Scenario {
                n_nodes: 100,
                sim_slots: slots(10_000),
                msg_rate: 5e-3,
                ..Scenario::default()
            },
        },
        Spec {
            name: "paper_scale",
            // The paper's Table 2 parameters (100 nodes, r = 0.2,
            // 5·10⁻⁴ msgs/node/slot, 10 000 slots).
            scenario: Scenario {
                n_nodes: 100,
                sim_slots: slots(10_000),
                ..Scenario::default()
            },
        },
    ]
}

/// The pre-drawn arrival schedule, so both modes service the identical
/// workload without paying traffic-generation cost inside the timed
/// region.
fn schedule(scenario: &Scenario, topo: &Topology, seed: u64) -> Vec<(Slot, Arrival)> {
    let mut traffic = TrafficGen::new(scenario.msg_rate, scenario.mix, seed);
    let mut out = Vec::new();
    let mut arrivals = Vec::new();
    for t in 0..scenario.sim_slots {
        traffic.tick(topo, t, &mut arrivals);
        for a in arrivals.drain(..) {
            out.push((t, a));
        }
    }
    out
}

/// Cheap digest of everything the simulation decided, for the
/// fast-vs-naive determinism cross-check.
#[derive(Debug, PartialEq)]
struct Digest {
    collisions: u64,
    busy_slots: u64,
    frames_sent: u64,
    completed: usize,
    received: usize,
}

struct Timed {
    ns_per_slot: f64,
    skipped_ratio: f64,
    digest: Digest,
}

fn drive(spec: &Spec, topo: &Topology, plan: &[(Slot, Arrival)], seed: u64, fast: bool) -> Timed {
    let scenario = &spec.scenario;
    let mut nodes = MacNode::build_network(topo, ProtocolKind::Bmmm, MacTiming::default(), seed);
    let mut engine = Engine::new(topo.clone(), scenario.capture, seed.wrapping_add(0x5eed));
    let start = Instant::now();
    if fast {
        for (t, a) in plan {
            engine.advance_to(&mut nodes, *t);
            nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), *t);
            engine.wake(a.node);
        }
        engine.advance_to(&mut nodes, scenario.sim_slots);
    } else {
        let mut i = 0;
        for t in 0..scenario.sim_slots {
            while i < plan.len() && plan[i].0 == t {
                let a = &plan[i].1;
                nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
                i += 1;
            }
            engine.step(&mut nodes);
        }
    }
    let elapsed = start.elapsed();
    for node in &mut nodes {
        node.drain_unfinished(scenario.sim_slots);
    }
    let digest = Digest {
        collisions: engine.channel().collisions_total,
        busy_slots: engine.channel().busy_slots,
        frames_sent: nodes.iter().map(|n| n.counters().frames_sent).sum(),
        completed: nodes
            .iter()
            .flat_map(|n| n.records())
            .filter(|r| r.outcome.is_completed())
            .count(),
        received: nodes.iter().map(|n| n.received().len()).sum(),
    };
    Timed {
        ns_per_slot: elapsed.as_nanos() as f64 / scenario.sim_slots as f64,
        skipped_ratio: engine.slots_skipped() as f64 / scenario.sim_slots as f64,
        digest,
    }
}

use rmm_bench::{median, percentile};

#[derive(Debug, Serialize)]
struct ScenarioReport {
    name: &'static str,
    nodes: usize,
    sim_slots: u64,
    msg_rate: f64,
    reps: usize,
    /// Median ns/slot across reps (the speedup and CI gates key on the
    /// medians; p95 is recorded so single-rep noise can't hide drift).
    naive_ns_per_slot: f64,
    fast_ns_per_slot: f64,
    naive_p95_ns_per_slot: f64,
    fast_p95_ns_per_slot: f64,
    speedup: f64,
    slots_skipped_ratio: f64,
    digests_match: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    smoke: bool,
    host: rmm_bench::HostMeta,
    scenarios: Vec<ScenarioReport>,
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let reps = if smoke { 3 } else { 7 };
    let seed = 42u64;
    let mut scenarios = Vec::new();
    for spec in specs(smoke) {
        let topo = uniform_square(spec.scenario.n_nodes, spec.scenario.radius, seed);
        let plan = schedule(&spec.scenario, &topo, seed);
        let mut naive_ns = Vec::new();
        let mut fast_ns = Vec::new();
        let mut skipped_ratio = 0.0;
        let mut digests_match = true;
        for _ in 0..reps {
            let naive = drive(&spec, &topo, &plan, seed, false);
            let fast = drive(&spec, &topo, &plan, seed, true);
            digests_match &= naive.digest == fast.digest;
            naive_ns.push(naive.ns_per_slot);
            fast_ns.push(fast.ns_per_slot);
            skipped_ratio = fast.skipped_ratio;
        }
        let naive_med = median(&naive_ns);
        let fast_med = median(&fast_ns);
        let report = ScenarioReport {
            name: spec.name,
            nodes: spec.scenario.n_nodes,
            sim_slots: spec.scenario.sim_slots,
            msg_rate: spec.scenario.msg_rate,
            reps,
            naive_ns_per_slot: naive_med,
            fast_ns_per_slot: fast_med,
            naive_p95_ns_per_slot: percentile(&naive_ns, 0.95),
            fast_p95_ns_per_slot: percentile(&fast_ns, 0.95),
            speedup: naive_med / fast_med,
            slots_skipped_ratio: skipped_ratio,
            digests_match,
        };
        eprintln!(
            "[engine_horizon] {:<15} naive {:>9.0} ns/slot | fast {:>9.0} ns/slot | {:>5.2}x | skipped {:>5.1}% | deterministic: {}",
            report.name,
            report.naive_ns_per_slot,
            report.fast_ns_per_slot,
            report.speedup,
            report.slots_skipped_ratio * 100.0,
            report.digests_match,
        );
        assert!(
            report.digests_match,
            "{}: fast and naive stepping disagreed",
            report.name
        );
        scenarios.push(report);
    }
    let report = Report {
        bench: "engine_horizon",
        smoke,
        host: rmm_bench::host_meta(),
        scenarios,
    };
    let out = std::env::var("BENCH_ENGINE_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../results/BENCH_engine.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write BENCH_engine.json");
    eprintln!("[engine_horizon] wrote {out}");
}
