//! Shared helpers for the benchmark suite that regenerates the paper's
//! tables and figures.
//!
//! Each `benches/*.rs` target does two things:
//!
//! 1. **regenerates its table/figure** at a bench-friendly scale (fewer
//!    seeds and slots than the paper's 100×10 000 — the `experiments`
//!    binary produces the full-scale numbers) and prints the series, so
//!    `cargo bench` output documents the reproduced shape, and
//! 2. **benchmarks** the underlying computation with Criterion, so the
//!    cost of the kernels (simulation slots, geometry, analysis) is
//!    tracked over time.

use rmm::prelude::*;
use serde::Serialize;

/// Host provenance stamped into every `BENCH_*.json`, so numbers can be
/// compared across machines and build configurations.
#[derive(Debug, Clone, Serialize)]
pub struct HostMeta {
    /// Logical cores visible to the process.
    pub cores: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: &'static str,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// `release` or `debug`, from `cfg!(debug_assertions)`.
    pub build_profile: &'static str,
}

/// Captures the current host's metadata.
pub fn host_meta() -> HostMeta {
    HostMeta {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
        build_profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    }
}

/// Nearest-rank percentile over a copy of `xs` (`p` in `[0, 1]`).
/// Panics on an empty slice or non-finite values.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut xs = xs.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((xs.len() as f64 * p).ceil() as usize).clamp(1, xs.len());
    xs[rank - 1]
}

/// Median as the 50th nearest-rank percentile.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Bench-scale scenario: the paper's Table 2 parameters with fewer slots
/// and runs, sized to keep `cargo bench` minutes-scale on one core.
pub fn bench_scenario() -> Scenario {
    Scenario {
        n_nodes: 60,
        sim_slots: 2_000,
        n_runs: 2,
        ..Scenario::default()
    }
}

/// The protocols the paper plots.
pub const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
];

/// Runs `scenario` for each protocol and returns one metric per protocol,
/// printing labelled series lines as it goes.
pub fn protocol_series(
    scenario: &Scenario,
    label: &str,
    metric: impl Fn(&RunMetrics) -> f64,
) -> Vec<(ProtocolKind, f64)> {
    let mut out = Vec::new();
    for p in PROTOCOLS {
        let results = rmm::workload::run_many(scenario, p);
        let m = rmm::workload::mean_group_metrics(&results);
        let v = metric(&m);
        eprintln!("[{label}] {:<6} = {v:.3}", p.name());
        out.push((p, v));
    }
    out
}

/// Convenience: the metric value for one protocol from a series.
pub fn of(series: &[(ProtocolKind, f64)], p: ProtocolKind) -> f64 {
    series
        .iter()
        .find(|(q, _)| *q == p)
        .expect("protocol in series")
        .1
}
