//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [EXPERIMENT ...] [--runs N] [--slots N] [--out DIR] [--quick]
//!             [--jobs N] [--resume]
//!
//! EXPERIMENT: all | table1 | fig2 | fig5 | fig6 | fig7 | fig8 | fig9 | fig10
//!             (fig6/fig9/fig10 run both their (a) density and (b) rate axes;
//!              the density and rate sweeps are shared across those figures
//!              and executed once)
//!             ext | overhead | fer | noise | mobility | route | faults —
//!             extension experiments beyond the paper's own figures
//!             (`ext` runs them all; they are not part of `all`)
//! ```
//!
//! `--jobs N` runs each experiment's job grid on N fleet worker threads
//! (0 = one per core); every artifact is byte-identical at any value.
//! `--resume` reuses completed jobs from `OUT/<experiment>.manifest.jsonl`
//! after an interrupted sweep.

mod common;
mod extensions;
mod fig2;
mod fig5;
mod sweeps;
mod table1;

use common::Options;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [all|table1|fig2|fig5|fig6|fig7|fig8|fig9|fig10|\
         ext|overhead|fer|noise|mobility|route|faults ...] \
         [--runs N] [--slots N] [--out DIR] [--quick] [--jobs N] [--resume]"
    );
    std::process::exit(2);
}

fn main() {
    let mut options = Options::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                options.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--slots" => {
                options.slots = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => options.out_dir = args.next().map(Into::into).unwrap_or_else(|| usage()),
            "--quick" => options = options.clone().quick(),
            "--jobs" => {
                options.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--resume" => options.resume = true,
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => wanted.push(name.to_string()),
            _ => usage(),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    let t0 = std::time::Instant::now();
    let has = |name: &str| wanted.iter().any(|w| w == name || w == "all");

    if has("table1") {
        table1::run(&options);
    }
    if has("fig2") {
        fig2::run(&options);
    }
    if has("fig5") {
        fig5::run(&options);
    }
    // fig6a/9a/10a share the density sweep; fig6b/9b/10b share the rate
    // sweep — run each shared sweep once if any of its figures is wanted.
    if has("fig6") || has("fig9") || has("fig10") {
        sweeps::density_sweep(&options);
        sweeps::rate_sweep(&options);
    }
    if has("fig7") {
        sweeps::fig7(&options);
    }
    if has("fig8") {
        sweeps::fig8(&options);
    }
    let has_ext = |name: &str| wanted.iter().any(|w| w == name || w == "ext");
    if has_ext("overhead") {
        extensions::overhead(&options);
    }
    if has_ext("fer") {
        extensions::fer(&options);
    }
    if has_ext("noise") {
        extensions::noise(&options);
    }
    if has_ext("mobility") {
        extensions::mobility(&options);
    }
    if has_ext("route") {
        extensions::route(&options);
    }
    if has_ext("faults") {
        extensions::faults(&options);
    }
    eprintln!("\n[experiments done in {:.1?}]", t0.elapsed());
}
