//! Figure 5: expected total number of contention phases per multicast vs
//! the number of intended receivers (per-round per-receiver success
//! probability `p = 0.9`), for BMW, BMMM, and LAMM.
//!
//! The paper notes that these analytical lines "coincide with the lines
//! of the average number of contention phases in Figure 9(a) very well";
//! the `fig5_overlay` table makes that claim measurable: a controlled
//! single-cell simulation with the frame-error rate chosen so that the
//! per-round per-receiver success probability is exactly `p = 0.9`
//! (a receiver is served iff its DATA, RAK and ACK all survive:
//! `p = (1 − fer)³`), overlaid on the recursion.

use crate::common::{emit, f2, f3, run_grid, Options};
use rmm_analysis::{
    bmmm_expected_total_phases, bmw_expected_total_phases, lamm_expected_total_phases,
};
use rmm_fleet::JobId;
use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, Outcome, ProtocolKind, TrafficKind};
use rmm_sim::{Capture, Engine, NodeId, Topology};
use rmm_stats::Table;

fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

/// Measured contention phases of one clean-cell multicast with the
/// channel's frame-error rate dialed to the target per-round `p`. The
/// fleet-job body for the overlay grid.
fn simulate_one(protocol: ProtocolKind, n: usize, p: f64, seed: u64) -> f64 {
    // A receiver is served in a round iff DATA, RAK and ACK survive.
    let fer = 1.0 - p.cbrt();
    let timing = MacTiming {
        timeout: 20_000,
        ..Default::default()
    };
    let topo = star(n);
    let mut nodes = MacNode::build_network(&topo, protocol, timing, seed);
    let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
    engine.set_fer(fer);
    let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
    engine.run(&mut nodes, 25_000);
    let rec = &nodes[0].records()[0];
    assert!(
        matches!(rec.outcome, Outcome::Completed(_)),
        "{protocol:?} n={n} seed={seed}: {:?}",
        rec.outcome
    );
    f64::from(rec.contention_phases)
}

/// Runs the Figure 5 experiment (analysis + LAMM Monte Carlo + the
/// analysis-vs-simulation overlay).
pub fn run(options: &Options) {
    let p = 0.9;
    let trials = (options.runs * 40).max(400);
    let mut table = Table::new(["n", "BMW", "BMMM", "LAMM"]);
    for n in 1..=20usize {
        table.row([
            n.to_string(),
            f3(bmw_expected_total_phases(n, p)),
            f3(bmmm_expected_total_phases(n, p)),
            f3(lamm_expected_total_phases(n, p, 0.2, trials, 42)),
        ]);
    }
    emit(
        options,
        "fig5",
        "Figure 5: expected total contention phases vs n (p = 0.9) — \
         BMW linear, BMMM/LAMM far below and sub-linear",
        &table,
    );

    // The "lines coincide" overlay: f_n vs a controlled simulation, one
    // fleet job per (protocol, n, seed).
    let seeds = (options.runs as u64 * 2).clamp(20, 120);
    let ns = [1usize, 2, 4, 6, 8, 10];
    let mut jobs: Vec<(JobId, (ProtocolKind, usize))> = Vec::new();
    for &n in &ns {
        for proto in [ProtocolKind::Bmmm, ProtocolKind::Bmw] {
            for seed in 0..seeds {
                jobs.push((
                    JobId::new("fig5", format!("{}/n={n}", proto.name()), seed),
                    (proto, n),
                ));
            }
        }
    }
    let hash_parts = [format!("p={p}|seeds={seeds}")];
    let phases: Vec<f64> = run_grid(options, "fig5", &hash_parts, &jobs, |id, &(proto, n)| {
        simulate_one(proto, n, p, id.seed)
    });
    let mean = |chunk: &[f64]| chunk.iter().sum::<f64>() / chunk.len() as f64;
    let mut per_cell = phases.chunks(seeds as usize);
    let mut overlay = Table::new(["n", "f_n (analysis)", "BMMM sim", "BMW analysis", "BMW sim"]);
    for &n in &ns {
        let bmmm_sim = mean(per_cell.next().expect("BMMM cell"));
        let bmw_sim = mean(per_cell.next().expect("BMW cell"));
        overlay.row([
            n.to_string(),
            f2(bmmm_expected_total_phases(n, p)),
            f2(bmmm_sim),
            f2(bmw_expected_total_phases(n, p)),
            f2(bmw_sim),
        ]);
    }
    emit(
        options,
        "fig5_overlay",
        "Figure 5 overlay: the f_n recursion vs a controlled single-cell \
         simulation at the same per-round p = 0.9 (the paper: the lines \
         'coincide very well')",
        &overlay,
    );
}
