//! Extension experiments beyond the paper's own figures:
//!
//! * `overhead` — per-message control-frame counts by kind (the Section 5
//!   claim that LAMM "significantly reduces the number of RTS, CTS, RAK
//!   and ACK frames"),
//! * `fer` — delivery and LAMM's Theorem 3 under random frame errors
//!   (stressing the paper's collisions-only-loss assumption),
//! * `noise` — LAMM under GPS position error,
//! * `mobility` — all protocols under random-waypoint motion with stale
//!   beacon-learned neighbor tables.

use crate::common::{emit, f2, f3, run_grid, Options, PAPER_PROTOCOLS};
use crate::sweeps::{run_cells, Cell};
use rmm_fleet::JobId;
use rmm_mac::ProtocolKind;
use rmm_route::{DiscoveryConfig, RouteSim};
use rmm_sim::FaultPlan;
use rmm_stats::{Summary, Table};
use rmm_workload::{run_mobile, MobilityConfig, Scenario};
use serde::{Deserialize, Serialize};

fn base(options: &Options) -> Scenario {
    Scenario {
        n_runs: options.runs,
        sim_slots: options.slots,
        ..Scenario::default()
    }
}

/// Control-frame overhead by kind and per completed multicast.
pub fn overhead(options: &Options) {
    let scenario = base(options);
    let mut table = Table::new([
        "protocol",
        "RTS",
        "CTS",
        "DATA",
        "ACK",
        "RAK",
        "NAK",
        "ctrl/completed msg",
    ]);
    let mut protos = vec![ProtocolKind::Ieee80211, ProtocolKind::TangGerla];
    protos.extend(PAPER_PROTOCOLS);
    let cells: Vec<Cell> = protos
        .iter()
        .map(|&p| Cell {
            point: p.name().to_string(),
            scenario: scenario.clone(),
            protocol: p,
            seed_base: 50_000,
        })
        .collect();
    let per_proto = run_cells(options, "overhead", &cells);
    for (p, results) in protos.iter().zip(per_proto) {
        let mut frames = rmm_mac::FrameKindCounts::default();
        let mut completed = 0usize;
        for r in &results {
            frames.add(&r.frames);
            completed += r
                .messages
                .iter()
                .filter(|m| m.is_group && m.completed)
                .count();
        }
        let per_msg = if completed == 0 {
            0.0
        } else {
            frames.control_total() as f64 / completed as f64
        };
        table.row([
            p.name().to_string(),
            frames.rts.to_string(),
            frames.cts.to_string(),
            frames.data.to_string(),
            frames.ack.to_string(),
            frames.rak.to_string(),
            frames.nak.to_string(),
            f2(per_msg),
        ]);
    }
    emit(
        options,
        "overhead",
        "Control-frame overhead (Section 5: LAMM reduces RTS/CTS/RAK/ACK \
         counts relative to BMMM; 802.11 has none and no reliability)",
        &table,
    );
}

/// Fraction of completed group messages that under-delivered (a Theorem 3
/// violation when it happens to LAMM).
fn violation_rate(results: &[rmm_workload::RunResult]) -> f64 {
    let (mut bad, mut total) = (0usize, 0usize);
    for r in results {
        for m in r.messages.iter().filter(|m| m.is_group && m.completed) {
            total += 1;
            if m.delivered < m.intended {
                bad += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        bad as f64 / total as f64
    }
}

/// Delivery and guarantee erosion under random frame errors.
pub fn fer(options: &Options) {
    let mut table = Table::new([
        "fer",
        "BMMM rate",
        "LAMM rate",
        "BMW rate",
        "BMMM violations",
        "LAMM violations",
    ]);
    let fers = [0.0, 0.02, 0.05, 0.1, 0.2];
    let protos = [ProtocolKind::Bmmm, ProtocolKind::Lamm, ProtocolKind::Bmw];
    let mut cells = Vec::new();
    for &fer in &fers {
        let scenario = base(options).with_fer(fer);
        for &p in &protos {
            cells.push(Cell {
                point: format!("fer={fer}/{}", p.name()),
                scenario: scenario.clone(),
                protocol: p,
                seed_base: 60_000,
            });
        }
    }
    let mut per_cell = run_cells(options, "ext_fer", &cells).into_iter();
    for &fer in &fers {
        let bmmm = per_cell.next().expect("BMMM cell");
        let lamm = per_cell.next().expect("LAMM cell");
        let bmw = per_cell.next().expect("BMW cell");
        let rate = |rs: &[rmm_workload::RunResult]| {
            Summary::of(
                &rs.iter()
                    .map(|r| r.group_metrics.delivery_rate)
                    .collect::<Vec<_>>(),
            )
            .mean
        };
        table.row([
            f2(fer),
            f3(rate(&bmmm)),
            f3(rate(&lamm)),
            f3(rate(&bmw)),
            f3(violation_rate(&bmmm)),
            f3(violation_rate(&lamm)),
        ]);
    }
    emit(
        options,
        "ext_fer",
        "Frame-error sweep: BMMM/BMW keep their guarantee (ACK implies \
         delivery); LAMM's coverage closures start missing receivers once \
         losses are not collision-caused (Theorem 3's stated assumption)",
        &table,
    );
}

/// LAMM under GPS position noise.
pub fn noise(options: &Options) {
    let mut table = Table::new(["sigma", "LAMM rate", "LAMM violations", "BMMM rate"]);
    let sigmas = [0.0, 0.01, 0.02, 0.05, 0.1];
    let mut cells = Vec::new();
    for &sigma in &sigmas {
        let scenario = base(options).with_position_noise(sigma);
        for &p in &[ProtocolKind::Lamm, ProtocolKind::Bmmm] {
            cells.push(Cell {
                point: format!("sigma={sigma}/{}", p.name()),
                scenario: scenario.clone(),
                protocol: p,
                seed_base: 70_000,
            });
        }
    }
    let mut per_cell = run_cells(options, "ext_noise", &cells).into_iter();
    for &sigma in &sigmas {
        let lamm = per_cell.next().expect("LAMM cell");
        let bmmm = per_cell.next().expect("BMMM cell");
        let rate = |rs: &[rmm_workload::RunResult]| {
            Summary::of(
                &rs.iter()
                    .map(|r| r.group_metrics.delivery_rate)
                    .collect::<Vec<_>>(),
            )
            .mean
        };
        table.row([
            f3(sigma),
            f3(rate(&lamm)),
            f3(violation_rate(&lamm)),
            f3(rate(&bmmm)),
        ]);
    }
    emit(
        options,
        "ext_noise",
        "GPS noise sweep (radius 0.2): how much beacon position error \
         LAMM's geometric closure tolerates (BMMM, position-free, as the \
         control)",
        &table,
    );
}

/// One route-discovery attempt's outcome (the fleet-job result for one
/// `(rate, protocol, seed)` cell of the `route` grid).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RouteProbe {
    /// A ≥3-hop origin/target pair existed in the sampled topology.
    trial: bool,
    /// The RREQ flood reached the target.
    reached: bool,
}

/// Route discovery (RREQ flooding) over each MAC protocol — the paper's
/// motivating AODV/DSR workload — across background load levels.
pub fn route(options: &Options) {
    let mut table = Table::new(["rate", "802.11", "BSMA", "BMW", "BMMM", "LAMM"]);
    let protocols = [
        rmm_mac::ProtocolKind::Ieee80211,
        rmm_mac::ProtocolKind::Bsma,
        rmm_mac::ProtocolKind::Bmw,
        rmm_mac::ProtocolKind::Bmmm,
        rmm_mac::ProtocolKind::Lamm,
    ];
    let rates = [5e-4, 1e-3, 2e-3];
    let mut cells: Vec<(Scenario, ProtocolKind)> = Vec::new();
    let mut jobs: Vec<(JobId, usize)> = Vec::new();
    let mut hash_parts: Vec<String> = Vec::new();
    for &rate in &rates {
        let scenario = Scenario {
            msg_rate: rate,
            n_nodes: 50,
            n_runs: options.runs,
            ..Scenario::default()
        };
        for &p in &protocols {
            let ci = cells.len();
            for seed in 0..options.runs as u64 {
                jobs.push((
                    JobId::new("ext_route", format!("rate={rate}/{}", p.name()), seed),
                    ci,
                ));
            }
            hash_parts.push(format!(
                "{}|{}",
                p.name(),
                serde_json::to_string(&scenario).expect("scenario serializes"),
            ));
            cells.push((scenario.clone(), p));
        }
    }
    let probes: Vec<RouteProbe> = run_grid(options, "ext_route", &hash_parts, &jobs, |id, &ci| {
        let (scenario, p) = &cells[ci];
        let mut sim = RouteSim::new(scenario, *p, id.seed);
        let Some((origin, target)) = sim.pick_distant_pair(3) else {
            return RouteProbe {
                trial: false,
                reached: false,
            };
        };
        RouteProbe {
            trial: true,
            reached: sim
                .discover(origin, target, DiscoveryConfig::default())
                .reached,
        }
    });
    let mut per_cell: Vec<(usize, usize)> = vec![(0, 0); cells.len()];
    for ((_, ci), probe) in jobs.iter().zip(&probes) {
        if probe.trial {
            per_cell[*ci].0 += 1;
            per_cell[*ci].1 += usize::from(probe.reached);
        }
    }
    let mut stats = per_cell.into_iter();
    for &rate in &rates {
        let mut row = vec![format!("{rate:.0e}")];
        for _ in &protocols {
            let (trials, reached) = stats.next().expect("cell per protocol");
            row.push(if trials == 0 {
                "—".to_string()
            } else {
                f3(reached as f64 / trials as f64)
            });
        }
        table.row(row);
    }
    emit(
        options,
        "ext_route",
        "Route discovery rate (≥3-hop RREQ floods, 50 nodes) vs background          load: the paper's motivating AODV/DSR workload on each MAC",
        &table,
    );
}

/// Mobility with stale beacon-learned neighbor tables.
pub fn mobility(options: &Options) {
    let mut table = Table::new(["max speed", "BSMA", "BMW", "BMMM", "LAMM"]);
    let speeds = [0.0, 1e-5, 5e-5, 2e-4];
    let scenario = base(options);
    let mut cells: Vec<(MobilityConfig, ProtocolKind)> = Vec::new();
    let mut jobs: Vec<(JobId, usize)> = Vec::new();
    let mut hash_parts: Vec<String> = Vec::new();
    for &vmax in &speeds {
        let config = MobilityConfig {
            speed_min: 0.0,
            speed_max: vmax,
            update_period: 100,
            beacon_period: 500,
        };
        for &p in &PAPER_PROTOCOLS {
            let ci = cells.len();
            for seed in 0..scenario.n_runs as u64 {
                jobs.push((
                    JobId::new(
                        "ext_mobility",
                        format!("vmax={vmax}/{}", p.name()),
                        seed + 90_000,
                    ),
                    ci,
                ));
            }
            hash_parts.push(format!(
                "{}|{vmax}|{}",
                p.name(),
                serde_json::to_string(&scenario).expect("scenario serializes"),
            ));
            cells.push((config, p));
        }
    }
    let rates: Vec<f64> = run_grid(options, "ext_mobility", &hash_parts, &jobs, |id, &ci| {
        let (config, p) = cells[ci];
        run_mobile(&scenario, p, config, id.seed)
            .group_metrics
            .delivery_rate
    });
    let mut grouped: Vec<Vec<f64>> = cells.iter().map(|_| Vec::new()).collect();
    for ((_, ci), rate) in jobs.iter().zip(rates) {
        grouped[*ci].push(rate);
    }
    let mut per_cell = grouped.into_iter();
    for &vmax in &speeds {
        let mut row = vec![format!("{vmax:.0e}")];
        for _ in PAPER_PROTOCOLS {
            let rates = per_cell.next().expect("cell per protocol");
            row.push(f3(Summary::of(&rates).mean));
        }
        table.row(row);
    }
    emit(
        options,
        "ext_mobility",
        "Random-waypoint mobility (beacons every 500 slots): stale \
         neighbor tables erode every protocol; reliable protocols spend \
         their timeout retrying departed receivers",
        &table,
    );
}

/// Graceful degradation with crashed receivers: raw delivery collapses
/// with the crash count (dead receivers can never ACK), while delivery
/// measured over *reachable* receivers stays high — the retry budgets
/// spend bounded effort on the dead and keep serving the living. The
/// liveness watchdog runs armed throughout; any stall is a bug.
pub fn faults(options: &Options) {
    let mut table = Table::new([
        "protocol",
        "crashes",
        "delivered frac",
        "delivered frac (reachable)",
        "stalls",
    ]);
    let mut stalls_total = 0usize;
    let crash_counts = [0usize, 2, 4, 8];
    let mut cells = Vec::new();
    for p in PAPER_PROTOCOLS {
        for &crashes in &crash_counts {
            let scenario = base(options)
                .with_faults(FaultPlan::random_crashes(
                    Scenario::default().n_nodes,
                    crashes,
                    0,
                    4242,
                ))
                .with_stall_window(1_000);
            cells.push(Cell {
                point: format!("{}/crashes={crashes}", p.name()),
                scenario,
                protocol: p,
                seed_base: 70_000,
            });
        }
    }
    let mut per_cell = run_cells(options, "ext_faults", &cells).into_iter();
    for p in PAPER_PROTOCOLS {
        for &crashes in &crash_counts {
            let results = per_cell.next().expect("cell per crash count");
            let raw: Vec<f64> = results
                .iter()
                .map(|r| r.group_metrics.avg_delivered_frac)
                .collect();
            let reachable: Vec<f64> = results
                .iter()
                .map(|r| r.group_metrics.avg_reachable_frac)
                .collect();
            let stalls: usize = results.iter().map(|r| r.stalls.len()).sum();
            stalls_total += stalls;
            table.row([
                p.name().to_string(),
                crashes.to_string(),
                f3(Summary::of(&raw).mean),
                f3(Summary::of(&reachable).mean),
                stalls.to_string(),
            ]);
        }
    }
    emit(
        options,
        "ext_faults",
        "Crashed receivers: raw delivery tracks the dead node count while \
         reachable-basis delivery holds; watchdog stalls must stay zero",
        &table,
    );
    assert_eq!(stalls_total, 0, "liveness watchdog reported stalls");
}
