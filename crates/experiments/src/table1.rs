//! Table 1: expected number of contention phases before the sender sends
//! data, at `q = 0.05` with `(n, ‖S′‖) = (5, 4)` and `(10, 6)`.

use crate::common::{emit, f2, Options};
use rmm_analysis::contention::table1;
use rmm_stats::Table;

/// Runs the Table 1 experiment (pure analysis).
pub fn run(options: &Options) {
    let mut table = Table::new(["Parameters", "BMMM", "LAMM", "BMW", "BSMA"]);
    for &(q, n, cover) in &[(0.05, 5, 4), (0.05, 10, 6)] {
        let row = table1(q, n, cover);
        table.row([
            format!("q={q}, n={n}, |S'|={cover}"),
            f2(row.bmmm),
            f2(row.lamm),
            f2(row.bmw),
            f2(row.bsma),
        ]);
    }
    emit(
        options,
        "table1",
        "Table 1: expected contention phases before the sender sends data \
         (paper: 1.00/1.00/1.05/3.27 and 1.00/1.00/1.05/4.08)",
        &table,
    );

    // Extended sweep beyond the paper's two rows, for context.
    let mut ext = Table::new(["q", "n", "|S'|", "BMMM", "LAMM", "BMW", "BSMA"]);
    for &q in &[0.01, 0.05, 0.1, 0.2] {
        for &(n, cover) in &[(5usize, 4usize), (10, 6), (20, 8)] {
            let row = table1(q, n, cover);
            ext.row([
                format!("{q}"),
                n.to_string(),
                cover.to_string(),
                f2(row.bmmm),
                f2(row.lamm),
                f2(row.bmw),
                f2(row.bsma),
            ]);
        }
    }
    emit(options, "table1_extended", "Table 1 (extended sweep)", &ext);
}
