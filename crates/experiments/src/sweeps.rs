//! The simulation sweeps behind Figures 6–10.
//!
//! Figures 6a/9a/10a share one *density* sweep (node-count axis) and
//! Figures 6b/9b/10b share one *rate* sweep, so each sweep is executed
//! once and re-reported per figure. Figure 7 sweeps the service timeout
//! and Figure 8 the reliability threshold.

use crate::common::{emit, emit_chart, f2, f3, run_grid, Options, PAPER_PROTOCOLS};
use rmm_fleet::JobId;
use rmm_mac::ProtocolKind;
use rmm_plot::{Chart, Series};
use rmm_stats::{MessageMetric, RunMetrics, Summary, Table};
use rmm_workload::{run_one, RunResult, Scenario};

/// One protocol's aggregate at one sweep point.
#[derive(Debug, Clone)]
struct Point {
    #[allow(dead_code)]
    x: f64,
    degree: Summary,
    delivery: Summary,
    phases: Summary,
    completion: Summary,
}

/// Summarizes one cell's seed-ordered runs.
fn summarize(results: &[RunResult], x: f64) -> Point {
    let delivery: Vec<f64> = results
        .iter()
        .map(|r| r.group_metrics.delivery_rate)
        .collect();
    let phases: Vec<f64> = results
        .iter()
        .map(|r| r.group_metrics.avg_contention_phases)
        .collect();
    let completion: Vec<f64> = results
        .iter()
        .map(|r| r.group_metrics.avg_completion_time)
        .collect();
    let degree: Vec<f64> = results.iter().map(|r| r.mean_degree).collect();
    Point {
        x,
        degree: Summary::of(&degree),
        delivery: Summary::of(&delivery),
        phases: Summary::of(&phases),
        completion: Summary::of(&completion),
    }
}

/// One sweep cell: a `(scenario, protocol)` pair every seed of which
/// becomes one fleet job.
pub struct Cell {
    /// Human-readable point key, e.g. `nodes=40/BMW` (the JobId `point`).
    pub point: String,
    /// The scenario to run.
    pub scenario: Scenario,
    /// The protocol under test.
    pub protocol: ProtocolKind,
    /// First seed; the cell runs `scenario.n_runs` seeds from here (the
    /// exact seeds the serial runner would use).
    pub seed_base: u64,
}

/// Expands `cells` into one job per `(cell, seed)`, runs the grid on the
/// fleet under `experiment`'s manifest, and returns each cell's runs
/// (seed-ordered), cell by cell in input order.
pub fn run_cells(options: &Options, experiment: &str, cells: &[Cell]) -> Vec<Vec<RunResult>> {
    let mut jobs: Vec<(JobId, usize)> = Vec::new();
    let mut hash_parts: Vec<String> = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        for s in 0..cell.scenario.n_runs as u64 {
            jobs.push((JobId::new(experiment, &cell.point, cell.seed_base + s), ci));
        }
        hash_parts.push(format!(
            "{}|{}|{}",
            cell.protocol.name(),
            cell.seed_base,
            serde_json::to_string(&cell.scenario).expect("scenario serializes"),
        ));
    }
    let results = run_grid(options, experiment, &hash_parts, &jobs, |id, &ci| {
        run_one(&cells[ci].scenario, cells[ci].protocol, id.seed)
    });
    // Jobs were laid out cell-contiguous and seed-ascending, so slicing
    // the merged results back per cell preserves the serial layout.
    let mut grouped: Vec<Vec<RunResult>> = cells.iter().map(|_| Vec::new()).collect();
    for ((_, ci), result) in jobs.iter().zip(results) {
        grouped[*ci].push(result);
    }
    grouped
}

fn base_scenario(options: &Options) -> Scenario {
    Scenario {
        n_runs: options.runs,
        sim_slots: options.slots,
        ..Scenario::default()
    }
}

/// Runs one sweep (axis values + scenario builder) for all protocols and
/// emits the three metric tables under the given figure names. The whole
/// `axis × protocol × seed` grid goes to the fleet as one manifest-backed
/// sweep named `experiment`.
#[allow(clippy::too_many_arguments)]
fn sweep_and_emit(
    options: &Options,
    experiment: &str,
    axis_name: &str,
    axis: &[f64],
    build: impl Fn(&Scenario, f64) -> Scenario,
    delivery_fig: Option<(&str, &str)>,
    phases_fig: Option<(&str, &str)>,
    completion_fig: Option<(&str, &str)>,
    x_display: impl Fn(f64, &Point) -> String,
) {
    let base = base_scenario(options);
    let mut cells: Vec<Cell> = Vec::new();
    for (i, &x) in axis.iter().enumerate() {
        let scenario = build(&base, x);
        for &p in &PAPER_PROTOCOLS {
            cells.push(Cell {
                point: format!("{axis_name}={x}/{}", p.name()),
                scenario: scenario.clone(),
                protocol: p,
                // The seed bases the serial sweep has always used: one
                // block of 10 000 per axis point, shared by protocols.
                seed_base: (i as u64) * 10_000,
            });
        }
    }
    let per_cell = run_cells(options, experiment, &cells);
    let mut points: Vec<(f64, Vec<Point>)> = Vec::new();
    let mut runs = per_cell.into_iter();
    for &x in axis {
        let per_proto: Vec<Point> = PAPER_PROTOCOLS
            .iter()
            .map(|_| summarize(&runs.next().expect("cell per protocol"), x))
            .collect();
        points.push((x, per_proto));
    }

    let header = |metric: &str| {
        let mut h = vec![format!("{axis_name}"), "x".into()];
        for p in PAPER_PROTOCOLS {
            h.push(format!("{} {metric}", p.name()));
        }
        h
    };
    let emit_metric = |fig: Option<(&str, &str)>, metric: &str, get: &dyn Fn(&Point) -> Summary| {
        let Some((name, title)) = fig else { return };
        let mut table = Table::new(header(metric));
        for (x, per_proto) in &points {
            let mut row = vec![f3(*x), x_display(*x, &per_proto[0])];
            for p in per_proto {
                row.push(f3(get(p).mean));
            }
            table.row(row);
        }
        emit(options, name, title, &table);
        // SVG rendition of the same series.
        let mut chart = Chart::new(title, axis_name, metric);
        for (pi, proto) in PAPER_PROTOCOLS.iter().enumerate() {
            let pts: Vec<(f64, f64)> = points
                .iter()
                .map(|(x, per)| (*x, get(&per[pi]).mean))
                .collect();
            chart.series(Series::new(proto.name(), pts));
        }
        emit_chart(options, name, &chart);
    };
    emit_metric(delivery_fig, "rate", &|p: &Point| p.delivery);
    emit_metric(phases_fig, "phases", &|p: &Point| p.phases);
    emit_metric(completion_fig, "slots", &|p: &Point| p.completion);
}

/// Figures 6a / 9a / 10a: metrics vs nodal density. The paper's x-axis is
/// the average number of neighbors; we sweep the node count and report
/// the measured mean degree alongside.
pub fn density_sweep(options: &Options) {
    let counts = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0];
    sweep_and_emit(
        options,
        "density",
        "nodes",
        &counts,
        |base, x| base.clone().with_nodes(x as usize),
        Some((
            "fig6a",
            "Figure 6a: successful delivery rate vs nodal density \
             (paper: LAMM > BMMM >> BSMA > BMW, all degrade with density)",
        )),
        Some((
            "fig9a",
            "Figure 9a: avg contention phases vs nodal density \
             (paper: BMW highest, BMMM/LAMM slightly below BSMA)",
        )),
        Some((
            "fig10a",
            "Figure 10a: avg multicast completion time vs nodal density \
             (paper: LAMM < BMMM < BMW)",
        )),
        |_, p| format!("deg={}", f2(p.degree.mean)),
    );
}

/// Figures 6b / 9b / 10b: metrics vs message generation rate.
pub fn rate_sweep(options: &Options) {
    let rates = [2.5e-4, 5e-4, 7.5e-4, 1e-3, 1.25e-3, 1.5e-3];
    sweep_and_emit(
        options,
        "rate",
        "rate",
        &rates,
        |base, x| base.clone().with_rate(x),
        Some((
            "fig6b",
            "Figure 6b: successful delivery rate vs message generation rate",
        )),
        Some((
            "fig9b",
            "Figure 9b: avg contention phases vs message generation rate",
        )),
        Some((
            "fig10b",
            "Figure 10b: avg completion time vs message generation rate",
        )),
        |x, _| format!("{x:.2e}"),
    );
}

/// Figure 7: successful delivery rate vs timeout (100–300 slots).
pub fn fig7(options: &Options) {
    let timeouts = [100.0, 150.0, 200.0, 250.0, 300.0];
    sweep_and_emit(
        options,
        "fig7",
        "timeout",
        &timeouts,
        |base, x| base.clone().with_timeout(x as u64),
        Some((
            "fig7",
            "Figure 7: successful delivery rate vs timeout \
             (paper: improves with timeout; BMMM/LAMM dominate throughout)",
        )),
        None,
        None,
        |x, _| format!("{x}"),
    );
}

/// Figure 8: successful delivery rate vs reliability threshold. All
/// protocols share the same runs per threshold-independent simulation;
/// the threshold only re-scores the messages, so one simulation per
/// protocol is re-evaluated across thresholds.
pub fn fig8(options: &Options) {
    let thresholds = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let base = base_scenario(options);
    let mut header = vec!["threshold".to_string()];
    for p in PAPER_PROTOCOLS {
        header.push(p.name().to_string());
    }
    let mut table = Table::new(header);

    // One simulation per protocol; re-score per threshold.
    let cells: Vec<Cell> = PAPER_PROTOCOLS
        .iter()
        .map(|&p| Cell {
            point: p.name().to_string(),
            scenario: base.clone(),
            protocol: p,
            seed_base: 80_000,
        })
        .collect();
    let per_proto_msgs: Vec<Vec<Vec<MessageMetric>>> = run_cells(options, "fig8", &cells)
        .into_iter()
        .map(|results| {
            results
                .into_iter()
                .map(|r| r.messages.into_iter().filter(|m| m.is_group).collect())
                .collect()
        })
        .collect();
    for &t in &thresholds {
        let mut row = vec![f2(t)];
        for msgs in &per_proto_msgs {
            let rates: Vec<f64> = msgs
                .iter()
                .map(|run| RunMetrics::compute(run, t).delivery_rate)
                .collect();
            row.push(f3(Summary::of(&rates).mean));
        }
        table.row(row);
    }
    emit(
        options,
        "fig8",
        "Figure 8: successful delivery rate vs reliability threshold \
         (paper: BMMM/LAMM always above BMW/BSMA)",
        &table,
    );
}
