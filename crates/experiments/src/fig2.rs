//! Figure 2: BMW vs BMMM control-frame timeline for one loss-free
//! multicast — the qualitative picture of why batching wins.

use crate::common::{emit, Options};
use rmm_geom::Point;
use rmm_mac::{MacNode, MacTiming, ProtocolKind, TrafficKind};
use rmm_sim::{Capture, Engine, NodeId, Topology};
use rmm_stats::Table;

fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

/// Runs one clean multicast and returns `(timeline, completion_slot)`.
fn timeline(protocol: ProtocolKind, n: usize) -> (String, u64) {
    let topo = star(n);
    let mut nodes = MacNode::build_network(&topo, protocol, MacTiming::default(), 2);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 2);
    engine.enable_trace();
    let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
    engine.run(&mut nodes, 1_000);
    let done = match nodes[0].records()[0].outcome {
        rmm_mac::Outcome::Completed(at) => at,
        other => panic!("clean-channel multicast did not complete: {other:?}"),
    };
    (
        engine.trace().expect("trace enabled").render_timeline(),
        done,
    )
}

/// Runs the Figure 2 experiment.
pub fn run(options: &Options) {
    let n = 3;
    let (bmw_tl, bmw_done) = timeline(ProtocolKind::Bmw, n);
    let (bmmm_tl, bmmm_done) = timeline(ProtocolKind::Bmmm, n);

    println!("\n== Figure 2: BMW vs BMMM timeline ({n} receivers, clean channel) ==");
    println!("--- BMW (one contention phase per receiver) ---");
    print!("{bmw_tl}");
    println!("completed at slot {bmw_done}");
    println!("--- BMMM (one contention phase total, RAK-coordinated ACKs) ---");
    print!("{bmmm_tl}");
    println!("completed at slot {bmmm_done}");

    let mut table = Table::new(["protocol", "completion slot", "contention phases"]);
    table.row(["BMW".to_string(), bmw_done.to_string(), n.to_string()]);
    table.row(["BMMM".to_string(), bmmm_done.to_string(), "1".to_string()]);
    emit(options, "fig2", "Figure 2 summary", &table);
    assert!(
        bmmm_done < bmw_done,
        "BMMM must finish before BMW on a clean channel"
    );
}
