//! Shared experiment plumbing: configuration, output, protocol lists,
//! and the fleet bridge that runs every sweep's job grid in parallel
//! with a resumable manifest.

use rmm_fleet::{run_sweep, Fnv1a, JobId, SweepConfig};
use rmm_mac::ProtocolKind;
use rmm_plot::Chart;
use rmm_stats::Table;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// The four protocols the paper simulates, in its plotting order.
pub const PAPER_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
];

/// Global experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Seeded runs per data point (paper: 100).
    pub runs: usize,
    /// Run length in slots (paper: 10 000).
    pub slots: u64,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Fleet worker threads (`--jobs N`; 0 = one per available core).
    pub jobs: usize,
    /// Reuse completed jobs from each experiment's manifest (`--resume`).
    pub resume: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            runs: 100,
            slots: 10_000,
            out_dir: PathBuf::from("results"),
            jobs: 0,
            resume: false,
        }
    }
}

impl Options {
    /// Reduced-cost preset for smoke testing (`--quick`).
    pub fn quick(mut self) -> Self {
        self.runs = 10;
        self.slots = 4_000;
        self
    }
}

/// Runs `jobs` for `experiment` on the fleet and returns their results
/// in job (input) order, so the output is identical at any `--jobs`
/// value.
///
/// A manifest at `out_dir/<experiment>.manifest.jsonl` records each
/// completed job; with `--resume`, jobs already recorded there are
/// loaded back instead of re-executed. `hash_parts` must describe
/// everything that affects results beyond the job ids themselves
/// (serialized scenarios, analysis parameters, …): together with the
/// global options and the full id grid they form the manifest's options
/// hash, so a stale manifest can never be silently merged. A stale or
/// corrupt manifest is a hard error (rerun without `--resume` to start
/// fresh).
pub fn run_grid<J, R>(
    options: &Options,
    experiment: &str,
    hash_parts: &[String],
    jobs: &[(JobId, J)],
    run: impl Fn(&JobId, &J) -> R + Sync,
) -> Vec<R>
where
    J: Sync,
    R: Serialize + Deserialize + Send,
{
    let mut h = Fnv1a::new();
    h.write_str(experiment);
    h.write_u64(options.runs as u64);
    h.write_u64(options.slots);
    for part in hash_parts {
        h.write_str(part);
    }
    for (id, _) in jobs {
        h.write_str(&id.to_string());
    }
    let config = SweepConfig {
        name: experiment.to_string(),
        workers: options.jobs,
        resume: options.resume,
        manifest_path: Some(options.out_dir.join(format!("{experiment}.manifest.jsonl"))),
        options_hash: h.finish(),
        schema: rmm_workload::scenario_schema_hash(),
        quiet: false,
        work_per_job: options.slots,
    };
    match run_sweep(&config, jobs, run) {
        Ok(out) => {
            if out.reused > 0 {
                eprintln!(
                    "[{experiment}: reused {} completed jobs from the manifest, ran {}]",
                    out.reused, out.executed
                );
            }
            out.results
        }
        Err(e) => {
            eprintln!("error: {experiment}: {e}");
            std::process::exit(2);
        }
    }
}

/// Prints a table to stdout under a heading and writes it as CSV.
pub fn emit(options: &Options, name: &str, title: &str, table: &Table) {
    println!("\n== {title} ==");
    print!("{}", table.render());
    let path = options.out_dir.join(format!("{name}.csv"));
    match rmm_stats::write_csv(table, &path) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Writes a rendered figure (SVG) next to the CSVs.
pub fn emit_chart(options: &Options, name: &str, chart: &Chart) {
    let path = options.out_dir.join(format!("{name}.svg"));
    match chart.write(&path, 560.0, 360.0) {
        Ok(()) => println!("[figure {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
