//! Shared experiment plumbing: configuration, output, protocol lists.

use rmm_mac::ProtocolKind;
use rmm_plot::Chart;
use rmm_stats::Table;
use std::path::PathBuf;

/// The four protocols the paper simulates, in its plotting order.
pub const PAPER_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Bsma,
    ProtocolKind::Bmw,
    ProtocolKind::Bmmm,
    ProtocolKind::Lamm,
];

/// Global experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Seeded runs per data point (paper: 100).
    pub runs: usize,
    /// Run length in slots (paper: 10 000).
    pub slots: u64,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            runs: 100,
            slots: 10_000,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Options {
    /// Reduced-cost preset for smoke testing (`--quick`).
    pub fn quick(mut self) -> Self {
        self.runs = 10;
        self.slots = 4_000;
        self
    }
}

/// Prints a table to stdout under a heading and writes it as CSV.
pub fn emit(options: &Options, name: &str, title: &str, table: &Table) {
    println!("\n== {title} ==");
    print!("{}", table.render());
    let path = options.out_dir.join(format!("{name}.csv"));
    match rmm_stats::write_csv(table, &path) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Writes a rendered figure (SVG) next to the CSVs.
pub fn emit_chart(options: &Options, name: &str, chart: &Chart) {
    let path = options.out_dir.join(format!("{name}.svg"));
    match chart.write(&path, 560.0, 360.0) {
        Ok(()) => println!("[figure {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
