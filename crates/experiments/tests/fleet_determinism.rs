//! End-to-end fleet guarantees, driven through the `experiments` binary:
//! artifacts are byte-identical at any `--jobs` value, and a killed
//! sweep resumed with `--resume` completes without re-executing finished
//! jobs — to the same bytes.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmm_experiments_fleet_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `experiments fig7` (a small real sweep: 5 timeouts × 4
/// protocols) into `out` and returns captured stderr.
fn run_fig7(out: &Path, extra: &[&str]) -> String {
    let output = Command::new(BIN)
        .args([
            "fig7",
            "--runs",
            "2",
            "--slots",
            "1500",
            "--out",
            out.to_str().unwrap(),
        ])
        .args(extra)
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn artifact_bytes(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("missing {name}: {e}"))
}

#[test]
fn artifacts_are_byte_identical_at_any_jobs_value() {
    let serial = tempdir("jobs1");
    run_fig7(&serial, &["--jobs", "1"]);
    for jobs in ["2", "8"] {
        let parallel = tempdir(&format!("jobs{jobs}"));
        run_fig7(&parallel, &["--jobs", jobs]);
        for artifact in ["fig7.csv", "fig7.svg"] {
            assert_eq!(
                artifact_bytes(&serial, artifact),
                artifact_bytes(&parallel, artifact),
                "{artifact} differs between --jobs 1 and --jobs {jobs}"
            );
        }
        let _ = std::fs::remove_dir_all(&parallel);
    }
    let _ = std::fs::remove_dir_all(&serial);
}

#[test]
fn killed_sweep_resumes_without_rerunning_finished_jobs() {
    let dir = tempdir("resume");
    run_fig7(&dir, &["--jobs", "2"]);
    let full_csv = artifact_bytes(&dir, "fig7.csv");
    let full_svg = artifact_bytes(&dir, "fig7.svg");

    // Simulate a kill partway through: keep the header plus the first 25
    // of the 40 completed-job lines.
    let manifest = dir.join("fig7.manifest.jsonl");
    let text = std::fs::read_to_string(&manifest).unwrap();
    let total_entries = text.lines().count() - 1;
    assert_eq!(total_entries, 40, "5 timeouts × 4 protocols × 2 runs");
    let keep: Vec<&str> = text.lines().take(1 + 25).collect();
    std::fs::write(&manifest, keep.join("\n") + "\n").unwrap();
    std::fs::remove_file(dir.join("fig7.csv")).unwrap();
    std::fs::remove_file(dir.join("fig7.svg")).unwrap();

    let stderr = run_fig7(&dir, &["--jobs", "2", "--resume"]);
    assert!(
        stderr.contains("reused 25 completed jobs from the manifest, ran 15"),
        "resume must reuse the 25 surviving jobs, got:\n{stderr}"
    );
    assert_eq!(
        full_csv,
        artifact_bytes(&dir, "fig7.csv"),
        "resumed CSV differs from the uninterrupted run"
    );
    assert_eq!(
        full_svg,
        artifact_bytes(&dir, "fig7.svg"),
        "resumed SVG differs from the uninterrupted run"
    );

    // The resumed manifest is complete again: a second resume reuses
    // everything and still emits identical artifacts.
    let stderr = run_fig7(&dir, &["--jobs", "8", "--resume"]);
    assert!(
        stderr.contains("reused 40 completed jobs from the manifest, ran 0"),
        "full manifest must satisfy the whole sweep, got:\n{stderr}"
    );
    assert_eq!(full_csv, artifact_bytes(&dir, "fig7.csv"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_manifest_is_rejected_not_merged() {
    let dir = tempdir("stale");
    run_fig7(&dir, &["--jobs", "2"]);
    // Different options (slots) → different options hash → stale.
    let output = Command::new(BIN)
        .args([
            "fig7",
            "--runs",
            "2",
            "--slots",
            "1600",
            "--resume",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("experiments binary runs");
    assert!(
        !output.status.success(),
        "resuming under changed options must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("stale manifest"),
        "expected a stale-manifest diagnostic, got:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
