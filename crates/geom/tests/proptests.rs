//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rmm_geom::{
    cover_angle, covers_disk, greedy_cover_set, is_cover_set, min_cover_set, update_uncovered, Arc,
    ArcSet, CoverAngle, Point, TAU,
};

const R: f64 = 0.2;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_arc() -> impl Strategy<Value = Arc> {
    (0.0f64..TAU, 0.0f64..TAU).prop_map(|(s, e)| Arc::new(s, e))
}

proptest! {
    /// An arc always contains its own start, end and midpoint.
    #[test]
    fn arc_contains_its_own_landmarks(arc in arb_arc()) {
        if !arc.is_empty() {
            prop_assert!(arc.contains(arc.start));
            prop_assert!(arc.contains(arc.end()));
            prop_assert!(arc.contains(arc.midpoint()));
        }
    }

    /// Union coverage agrees with dense pointwise sampling of `contains`.
    #[test]
    fn arcset_full_circle_matches_sampling(arcs in prop::collection::vec(arb_arc(), 0..8)) {
        let set = ArcSet::from_arcs(arcs);
        let covered_everywhere = (0..720).all(|i| {
            // Sample slightly off the lattice to dodge endpoint epsilons.
            set.contains(i as f64 * TAU / 720.0 + 1e-4)
        });
        if set.covers_full_circle() {
            prop_assert!(covered_everywhere);
        }
        // And a definite gap direction must not be reported as covered.
        if !set.covers_full_circle() {
            let gaps = set.gaps();
            prop_assert!(!gaps.is_empty());
            let mid = gaps[0].midpoint();
            if gaps[0].extent > 1e-6 {
                prop_assert!(!set.contains(mid));
            }
        }
    }

    /// Covered measure plus gap measure equals the full circle.
    #[test]
    fn measure_plus_gaps_is_tau(arcs in prop::collection::vec(arb_arc(), 0..8)) {
        let set = ArcSet::from_arcs(arcs);
        let gap_total: f64 = set.gaps().iter().map(|g| g.extent).sum();
        prop_assert!((set.covered_measure() + gap_total - TAU).abs() < 1e-6);
    }

    /// Every boundary direction inside a cover angle maps to a boundary
    /// point of A(p) lying inside A(q): the defining property of Def. 2.
    #[test]
    fn cover_angle_sector_is_inside_neighbor(p in arb_point(), q in arb_point()) {
        match cover_angle(&p, &q, R) {
            CoverAngle::Partial(a) => {
                for i in 0..=16 {
                    let t = a.start + a.extent * i as f64 / 16.0;
                    let boundary = p.offset(R * t.cos(), R * t.sin());
                    prop_assert!(boundary.within(&q, R + 1e-7));
                }
            }
            CoverAngle::Full => prop_assert!(p.dist(&q) < 1e-9),
            CoverAngle::Empty => prop_assert!(p.dist(&q) > R - 1e-9),
        }
    }

    /// Theorem 4 is sound in the simulator's disk model: whenever the angle
    /// test says A(p) is covered, every sampled point of A(p) lies in some
    /// covering disk.
    #[test]
    fn covers_disk_soundness(p in arb_point(), cover in prop::collection::vec(arb_point(), 0..8)) {
        if covers_disk(&p, &cover, R) {
            for i in 0..24 {
                let ang = i as f64 * TAU / 24.0;
                for rad in [0.25 * R, 0.6 * R, 0.999 * R] {
                    let sample = p.offset(rad * ang.cos(), rad * ang.sin());
                    prop_assert!(
                        cover.iter().any(|c| c.within(&sample, R + 1e-7)),
                        "sample at angle {ang}, radius {rad} not covered"
                    );
                }
            }
        }
    }

    /// Both cover-set constructions always return genuine cover sets, and
    /// the exact search is never larger than greedy on small instances.
    #[test]
    fn cover_sets_are_cover_sets(pts in prop::collection::vec(arb_point(), 1..10)) {
        let set: Vec<usize> = (0..pts.len()).collect();
        let exact = min_cover_set(&pts, &set, R);
        let greedy = greedy_cover_set(&pts, &set, R);
        prop_assert!(is_cover_set(&pts, &set, &exact, R));
        prop_assert!(is_cover_set(&pts, &set, &greedy, R));
        prop_assert!(exact.len() <= greedy.len());
        prop_assert!(!exact.is_empty());
        // Results are subsets of the input set.
        prop_assert!(exact.iter().all(|i| set.contains(i)));
        prop_assert!(greedy.iter().all(|i| set.contains(i)));
    }

    /// UPDATE(S, S_ACK) never returns acked nodes, returns a subset of S,
    /// and returns all of S when nothing was acked (unless S is empty).
    #[test]
    fn update_invariants(pts in prop::collection::vec(arb_point(), 1..10), ack_mask in 0u32..1024) {
        let set: Vec<usize> = (0..pts.len()).collect();
        let acked: Vec<usize> = set
            .iter()
            .copied()
            .filter(|&i| ack_mask & (1 << i) != 0)
            .collect();
        let rem = update_uncovered(&pts, &set, &acked, R);
        prop_assert!(rem.iter().all(|i| set.contains(i)));
        prop_assert!(rem.iter().all(|i| !acked.contains(i)));
        if acked.is_empty() {
            prop_assert_eq!(rem.len(), set.len());
        }
        // Soundness: a node reported covered really had its disk covered.
        for &p in set.iter().filter(|i| !rem.contains(i) && !acked.contains(i)) {
            let cover: Vec<Point> = acked.iter().map(|&i| pts[i]).collect();
            prop_assert!(covers_disk(&pts[p], &cover, R));
        }
    }

    /// If S' is a cover set of S then UPDATE(S, S') empties S.
    #[test]
    fn cover_set_acks_empty_update(pts in prop::collection::vec(arb_point(), 1..9)) {
        let set: Vec<usize> = (0..pts.len()).collect();
        let mcs = min_cover_set(&pts, &set, R);
        let rem = update_uncovered(&pts, &set, &mcs, R);
        prop_assert!(rem.is_empty(), "MCS acked but UPDATE left {rem:?}");
    }
}
