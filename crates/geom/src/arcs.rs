//! Unions of circular arcs.
//!
//! [`ArcSet`] accumulates arcs and answers the question at the heart of the
//! paper's Theorem 4: *does the union of the cover angles span the full
//! circle `[0°, 360°]`?*

use crate::angle::{Arc, TAU};
use crate::EPS;

/// A set of circular arcs with union queries.
///
/// Arcs are stored as they arrive; queries normalize them into sorted,
/// merged linear intervals on `[0, 2π]`.
#[derive(Debug, Clone, Default)]
pub struct ArcSet {
    arcs: Vec<Arc>,
}

impl ArcSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ArcSet::default()
    }

    /// Creates a set from an iterator of arcs.
    pub fn from_arcs<I: IntoIterator<Item = Arc>>(arcs: I) -> Self {
        ArcSet {
            arcs: arcs.into_iter().collect(),
        }
    }

    /// Adds an arc to the set. Empty arcs are ignored.
    pub fn push(&mut self, arc: Arc) {
        if !arc.is_empty() {
            self.arcs.push(arc);
        }
    }

    /// Number of (raw, unmerged) arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the set holds no arcs.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Removes all arcs, keeping the allocation (workhorse reuse).
    pub fn clear(&mut self) {
        self.arcs.clear();
    }

    /// Merged linear intervals `[lo, hi]` (sorted, disjoint) covering the
    /// same directions as the arc union, with `0 ≤ lo ≤ hi ≤ 2π`.
    pub fn merged_intervals(&self) -> Vec<[f64; 2]> {
        let mut intervals: Vec<[f64; 2]> = Vec::with_capacity(self.arcs.len() * 2);
        for arc in &self.arcs {
            let (first, second) = arc.to_linear_intervals();
            intervals.push(first);
            if let Some(second) = second {
                intervals.push(second);
            }
        }
        intervals.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("angles are finite"));
        let mut merged: Vec<[f64; 2]> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.last_mut() {
                Some(last) if iv[0] <= last[1] + EPS => {
                    if iv[1] > last[1] {
                        last[1] = iv[1];
                    }
                }
                _ => merged.push(iv),
            }
        }
        merged
    }

    /// Whether the union of the arcs covers the full circle (Theorem 4
    /// condition `⋃ [αᵢ, βᵢ] = [0, 360]`).
    pub fn covers_full_circle(&self) -> bool {
        if self.arcs.iter().any(|a| a.is_full()) {
            return true;
        }
        let merged = self.merged_intervals();
        merged.len() == 1 && merged[0][0] <= EPS && merged[0][1] >= TAU - EPS
    }

    /// Whether direction `a` is covered by at least one arc.
    pub fn contains(&self, a: f64) -> bool {
        self.arcs.iter().any(|arc| arc.contains(a))
    }

    /// Total covered measure (radians), counting overlaps once.
    pub fn covered_measure(&self) -> f64 {
        self.merged_intervals().iter().map(|iv| iv[1] - iv[0]).sum()
    }

    /// Uncovered gaps as arcs (complement of the union).
    pub fn gaps(&self) -> Vec<Arc> {
        if self.covers_full_circle() {
            return Vec::new();
        }
        let merged = self.merged_intervals();
        if merged.is_empty() {
            return vec![Arc::full()];
        }
        let mut gaps = Vec::new();
        // Gap between consecutive intervals.
        for w in merged.windows(2) {
            if w[1][0] - w[0][1] > EPS {
                gaps.push(Arc::from_endpoints(w[0][1], w[1][0]));
            }
        }
        // Wrap-around gap between the last interval's end and the first's
        // start (through 2π ≡ 0).
        let first = merged[0];
        let last = merged[merged.len() - 1];
        let head = first[0]; // uncovered: [last[1], 2π) ∪ [0, head)
        if (TAU - last[1]) + head > EPS {
            gaps.push(Arc::new(last[1], (TAU - last[1]) + head));
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::DEG;
    use std::f64::consts::PI;

    #[test]
    fn empty_set_covers_nothing() {
        let s = ArcSet::new();
        assert!(!s.covers_full_circle());
        assert_eq!(s.covered_measure(), 0.0);
        assert_eq!(s.gaps(), vec![Arc::full()]);
    }

    #[test]
    fn single_full_arc_covers() {
        let s = ArcSet::from_arcs([Arc::full()]);
        assert!(s.covers_full_circle());
        assert!(s.gaps().is_empty());
    }

    #[test]
    fn two_half_circles_cover() {
        let s = ArcSet::from_arcs([Arc::new(0.0, PI), Arc::new(PI, PI)]);
        assert!(s.covers_full_circle());
    }

    #[test]
    fn two_half_circles_with_gap_do_not_cover() {
        let s = ArcSet::from_arcs([Arc::new(0.0, PI - 0.01), Arc::new(PI, PI - 0.01)]);
        assert!(!s.covers_full_circle());
        let gaps = s.gaps();
        assert_eq!(gaps.len(), 2);
        let total_gap: f64 = gaps.iter().map(|g| g.extent).sum();
        assert!((total_gap - 0.02).abs() < 1e-9);
    }

    #[test]
    fn overlapping_arcs_merge() {
        let s = ArcSet::from_arcs([
            Arc::new(0.0, 2.0),
            Arc::new(1.5, 2.0),
            Arc::new(3.0, TAU - 3.0),
        ]);
        assert!(s.covers_full_circle());
    }

    #[test]
    fn wrapping_arc_plus_middle_covers() {
        // [300°, 60°] (wraps) plus [60°, 300°].
        let s = ArcSet::from_arcs([
            Arc::from_endpoints(300.0 * DEG, 60.0 * DEG),
            Arc::from_endpoints(60.0 * DEG, 300.0 * DEG),
        ]);
        assert!(s.covers_full_circle());
    }

    #[test]
    fn wrap_gap_detected() {
        // Covers [10°, 350°]; the gap wraps through 0°.
        let s = ArcSet::from_arcs([Arc::from_endpoints(10.0 * DEG, 350.0 * DEG)]);
        assert!(!s.covers_full_circle());
        let gaps = s.gaps();
        assert_eq!(gaps.len(), 1);
        assert!((gaps[0].extent - 20.0 * DEG).abs() < 1e-9);
        assert!(gaps[0].contains(0.0));
    }

    #[test]
    fn covered_measure_counts_overlap_once() {
        let s = ArcSet::from_arcs([Arc::new(0.0, 2.0), Arc::new(1.0, 2.0)]);
        assert!((s.covered_measure() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn contains_matches_arcs() {
        let s = ArcSet::from_arcs([Arc::new(1.0, 0.5)]);
        assert!(s.contains(1.25));
        assert!(!s.contains(2.0));
    }

    #[test]
    fn clear_retains_nothing() {
        let mut s = ArcSet::from_arcs([Arc::full()]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.covers_full_circle());
    }

    #[test]
    fn many_small_arcs_cover_exactly() {
        let n = 360;
        let arcs = (0..n).map(|i| Arc::new(i as f64 * TAU / n as f64, TAU / n as f64));
        let s = ArcSet::from_arcs(arcs);
        assert!(s.covers_full_circle());
    }

    #[test]
    fn many_small_arcs_with_pinhole_gap() {
        let n = 360;
        let arcs = (0..n - 1).map(|i| Arc::new(i as f64 * TAU / n as f64, TAU / n as f64));
        let s = ArcSet::from_arcs(arcs);
        assert!(!s.covers_full_circle());
    }
}
