//! Angles and directed circular arcs.
//!
//! The paper expresses cover angles in degrees on `[0, 360]`; internally we
//! use radians on `[0, 2π)`. An [`Arc`] is stored as a start direction plus
//! a non-negative extent, which sidesteps wrap-around ambiguity: the arc
//! `[350°, 10°]` is simply `start = 350°, extent = 20°`.

use crate::EPS;
use serde::{Deserialize, Serialize};

/// Full turn, `2π`.
pub const TAU: f64 = std::f64::consts::TAU;

/// One degree in radians.
pub const DEG: f64 = std::f64::consts::PI / 180.0;

/// Normalizes an angle into `[0, 2π)`.
#[inline]
pub fn normalize_angle(a: f64) -> f64 {
    let mut a = a % TAU;
    if a < 0.0 {
        a += TAU;
    }
    // `-1e-30 % TAU + TAU` rounds to TAU itself; fold it back to 0.
    if a >= TAU {
        a = 0.0;
    }
    a
}

/// A counter-clockwise circular arc of directions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arc {
    /// Start direction in radians, normalized to `[0, 2π)`.
    pub start: f64,
    /// Counter-clockwise extent in radians, clamped to `[0, 2π]`.
    pub extent: f64,
}

impl Arc {
    /// Creates an arc from a start direction and a CCW extent. The start is
    /// normalized and the extent clamped to a full turn.
    pub fn new(start: f64, extent: f64) -> Self {
        Arc {
            start: normalize_angle(start),
            extent: extent.clamp(0.0, TAU),
        }
    }

    /// Creates the arc running counter-clockwise from `from` to `to`
    /// (paper notation `[α, β]`).
    pub fn from_endpoints(from: f64, to: f64) -> Self {
        let from = normalize_angle(from);
        let to = normalize_angle(to);
        let extent = normalize_angle(to - from);
        Arc {
            start: from,
            extent,
        }
    }

    /// Arc covering the whole circle.
    pub const fn full() -> Self {
        Arc {
            start: 0.0,
            extent: TAU,
        }
    }

    /// End direction (`start + extent`, normalized).
    #[inline]
    pub fn end(&self) -> f64 {
        normalize_angle(self.start + self.extent)
    }

    /// Whether this arc covers the whole circle (up to [`EPS`]).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.extent >= TAU - EPS
    }

    /// Whether this arc is (numerically) empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.extent <= EPS
    }

    /// Whether direction `a` lies on the arc (inclusive of endpoints).
    pub fn contains(&self, a: f64) -> bool {
        if self.is_full() {
            return true;
        }
        let rel = normalize_angle(a - self.start);
        rel <= self.extent + EPS
    }

    /// Midpoint direction of the arc.
    pub fn midpoint(&self) -> f64 {
        normalize_angle(self.start + self.extent / 2.0)
    }

    /// Splits the arc into up to two linear intervals `[lo, hi]` with
    /// `0 ≤ lo ≤ hi ≤ 2π`, unwrapping arcs that cross the 0 direction.
    pub fn to_linear_intervals(&self) -> ([f64; 2], Option<[f64; 2]>) {
        if self.is_full() {
            return ([0.0, TAU], None);
        }
        let end = self.start + self.extent;
        if end <= TAU {
            ([self.start, end], None)
        } else {
            ([self.start, TAU], Some([0.0, end - TAU]))
        }
    }

    /// The paper's degree notation `[α°, β°]` for this arc.
    pub fn to_degrees(&self) -> (f64, f64) {
        (self.start / DEG, self.end() / DEG)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn normalize_wraps_negative() {
        assert!((normalize_angle(-PI / 2.0) - 1.5 * PI).abs() < 1e-12);
        assert!((normalize_angle(5.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(normalize_angle(0.0), 0.0);
    }

    #[test]
    fn normalize_never_returns_tau() {
        assert!(normalize_angle(-1e-30) < TAU);
        assert!(normalize_angle(TAU) < TAU);
        assert!(normalize_angle(-0.0) < TAU);
    }

    #[test]
    fn from_endpoints_simple() {
        let a = Arc::from_endpoints(0.0, PI);
        assert!((a.extent - PI).abs() < 1e-12);
        assert!(a.contains(PI / 2.0));
        assert!(!a.contains(1.5 * PI));
    }

    #[test]
    fn from_endpoints_wrapping() {
        // [350°, 10°] wraps through zero.
        let a = Arc::from_endpoints(350.0 * DEG, 10.0 * DEG);
        assert!((a.extent - 20.0 * DEG).abs() < 1e-9);
        assert!(a.contains(0.0));
        assert!(a.contains(355.0 * DEG));
        assert!(a.contains(5.0 * DEG));
        assert!(!a.contains(180.0 * DEG));
    }

    #[test]
    fn full_arc_contains_everything() {
        let a = Arc::full();
        assert!(a.is_full());
        for k in 0..16 {
            assert!(a.contains(k as f64 * TAU / 16.0));
        }
    }

    #[test]
    fn contains_is_endpoint_inclusive() {
        let a = Arc::new(1.0, 1.0);
        assert!(a.contains(1.0));
        assert!(a.contains(2.0));
    }

    #[test]
    fn linear_intervals_non_wrapping() {
        let a = Arc::new(1.0, 1.5);
        let (first, second) = a.to_linear_intervals();
        assert_eq!(first, [1.0, 2.5]);
        assert!(second.is_none());
    }

    #[test]
    fn linear_intervals_wrapping() {
        let a = Arc::new(TAU - 0.5, 1.0);
        let (first, second) = a.to_linear_intervals();
        assert!((first[0] - (TAU - 0.5)).abs() < 1e-12);
        assert!((first[1] - TAU).abs() < 1e-12);
        let second = second.unwrap();
        assert!((second[0] - 0.0).abs() < 1e-12);
        assert!((second[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn midpoint_wraps() {
        let a = Arc::new(TAU - 0.2, 0.4);
        assert!((a.midpoint() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn degrees_roundtrip() {
        let a = Arc::from_endpoints(90.0 * DEG, 180.0 * DEG);
        let (s, e) = a.to_degrees();
        assert!((s - 90.0).abs() < 1e-9);
        assert!((e - 180.0).abs() < 1e-9);
    }
}
