//! Computational geometry for location-aware multicast MAC protocols.
//!
//! This crate implements the geometric machinery of Section 5 of
//! *"Reliable MAC Layer Multicast in IEEE 802.11 Wireless Networks"*
//! (Sun, Huang, Arora, Lai — ICPP 2002):
//!
//! * [`Point`] — 2-D station positions,
//! * [`CoverAngle`] / [`cover_angle`] — Definition 2 of the paper: the arc
//!   of directions around a node `p` whose bounding sector of `A(p)` is
//!   guaranteed to lie inside a neighbor's coverage disk `A(q)`,
//! * [`ArcSet`] — unions of circular arcs with an exact full-circle test
//!   (the angle-based scheme of Theorem 4),
//! * [`covers_disk`] — the Theorem 4 test `A(p) ⊆ A(C)`,
//! * [`min_cover_set`] / [`greedy_cover_set`] — cover-set computation
//!   (Definition 1); `MCS(S)` in the LAMM sender protocol,
//! * [`update_uncovered`] — the `UPDATE(S, S_ACK)` procedure.
//!
//! All stations are assumed to share a transmission radius `R`, exactly as
//! the paper assumes. Angles are kept in radians internally; helper
//! conversions to the paper's `[0, 360]` degree notation are provided.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod angle;
pub mod arcs;
pub mod cover;
pub mod coverset;
pub mod point;

pub use angle::{normalize_angle, Arc, DEG, TAU};
pub use arcs::ArcSet;
pub use cover::{angular_coverage, cover_angle, covers_disk, CoverAngle};
pub use coverset::{greedy_cover_set, is_cover_set, min_cover_set, update_uncovered};
pub use point::Point;

/// Numerical tolerance used throughout the crate for angle and distance
/// comparisons. Coordinates in the simulator live in the unit square, so an
/// absolute epsilon is appropriate.
pub const EPS: f64 = 1e-9;
