//! Cover angles (Definition 2) and the angle-based coverage test
//! (Theorem 4).

use crate::angle::Arc;
use crate::arcs::ArcSet;
use crate::point::Point;
use crate::EPS;

/// The cover angle of a node `p` for a node `q` (paper Definition 2).
///
/// * Two nodes at the same location cover each other fully (`Full`,
///   the paper's `[0, 360]`).
/// * Nodes farther than `R` apart do not cover each other at all
///   (`Empty`, the paper's `∅`).
/// * Otherwise the cover angle is the arc `[∠cpa, ∠cpb]` where `a, b` are
///   the intersections of the boundaries of `A(p)` and `A(q)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoverAngle {
    /// `q` contributes no coverage of `A(p)`.
    Empty,
    /// `A(p) ⊆ A(q)` trivially (co-located nodes).
    Full,
    /// The sector of `A(p)` spanned by this arc lies inside `A(q)`.
    Partial(Arc),
}

impl CoverAngle {
    /// The arc form of the cover angle, if any.
    pub fn arc(&self) -> Option<Arc> {
        match self {
            CoverAngle::Empty => None,
            CoverAngle::Full => Some(Arc::full()),
            CoverAngle::Partial(a) => Some(*a),
        }
    }
}

/// Computes the cover angle of `p` for `q`, assuming both nodes have
/// transmission radius `r` (the paper assumes a shared constant radius).
///
/// Geometry: with `d = |pq| ≤ r`, the boundary circles of `A(p)` and
/// `A(q)` intersect at the two points at angular offset
/// `±arccos(d / 2r)` from the direction `p → q`. The sector of `A(p)`
/// between those directions is contained in `A(p) ∩ A(q)`.
pub fn cover_angle(p: &Point, q: &Point, r: f64) -> CoverAngle {
    debug_assert!(r > 0.0, "transmission radius must be positive");
    let d = p.dist(q);
    if d <= EPS {
        return CoverAngle::Full;
    }
    if d > r + EPS {
        return CoverAngle::Empty;
    }
    let half_width = (d / (2.0 * r)).clamp(-1.0, 1.0).acos();
    let center = p.direction_to(q);
    CoverAngle::Partial(Arc::new(center - half_width, 2.0 * half_width))
}

/// Theorem 4 test: is the coverage disk `A(p)` completely covered by the
/// coverage disks of the nodes in `cover` (all with radius `r`)?
///
/// This is the *angle-based scheme*: sufficient for coverage, and exactly
/// the test LAMM uses to decide which receivers need no explicit ACK.
///
/// ```
/// use rmm_geom::{covers_disk, Point};
/// let p = Point::new(0.5, 0.5);
/// // Three tight neighbors at 120° spacing cover p's whole disk…
/// let ring: Vec<Point> = (0..3)
///     .map(|i| {
///         let a = i as f64 * std::f64::consts::TAU / 3.0;
///         p.offset(0.05 * a.cos(), 0.05 * a.sin())
///     })
///     .collect();
/// assert!(covers_disk(&p, &ring, 0.2));
/// // …but any two of them leave a gap.
/// assert!(!covers_disk(&p, &ring[..2], 0.2));
/// ```
pub fn covers_disk(p: &Point, cover: &[Point], r: f64) -> bool {
    covers_disk_with(p, cover.iter(), r)
}

/// Fraction of the direction circle around `p` covered by the cover
/// angles of `cover` — a cheap diagnostic for how close a set is to
/// covering `A(p)` (1.0 means the Theorem 4 test passes).
pub fn angular_coverage(p: &Point, cover: &[Point], r: f64) -> f64 {
    let mut arcs = ArcSet::new();
    for q in cover {
        match cover_angle(p, q, r) {
            CoverAngle::Full => return 1.0,
            CoverAngle::Partial(a) => arcs.push(a),
            CoverAngle::Empty => {}
        }
    }
    arcs.covered_measure() / crate::angle::TAU
}

/// [`covers_disk`] over an iterator of covering points, avoiding the need
/// to materialize a slice.
pub fn covers_disk_with<'a, I>(p: &Point, cover: I, r: f64) -> bool
where
    I: IntoIterator<Item = &'a Point>,
{
    let mut arcs = ArcSet::new();
    for q in cover {
        match cover_angle(p, q, r) {
            CoverAngle::Full => return true,
            CoverAngle::Partial(a) => arcs.push(a),
            CoverAngle::Empty => {}
        }
    }
    arcs.covers_full_circle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::{DEG, TAU};
    use std::f64::consts::PI;

    const R: f64 = 0.2;

    #[test]
    fn colocated_nodes_cover_fully() {
        let p = Point::new(0.5, 0.5);
        assert_eq!(cover_angle(&p, &p, R), CoverAngle::Full);
    }

    #[test]
    fn distant_nodes_cover_nothing() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(0.5, 0.0);
        assert_eq!(cover_angle(&p, &q, R), CoverAngle::Empty);
    }

    #[test]
    fn neighbor_at_exact_radius_covers_one_third() {
        // d = r ⇒ half-width = arccos(1/2) = 60°, so the arc is 120° wide,
        // centered on the direction to q.
        let p = Point::new(0.0, 0.0);
        let q = Point::new(R, 0.0);
        match cover_angle(&p, &q, R) {
            CoverAngle::Partial(a) => {
                assert!((a.extent - 120.0 * DEG).abs() < 1e-9);
                assert!((a.midpoint() - 0.0).abs() < 1e-9);
            }
            other => panic!("expected partial cover angle, got {other:?}"),
        }
    }

    #[test]
    fn near_coincident_neighbor_covers_half() {
        // d → 0 ⇒ half-width → 90°: the cover angle tends to a half circle
        // (Definition 2 is conservative; only exactly co-located nodes give
        // the full circle).
        let p = Point::new(0.0, 0.0);
        let q = Point::new(1e-6, 0.0);
        match cover_angle(&p, &q, R) {
            CoverAngle::Partial(a) => assert!((a.extent - PI).abs() < 1e-4),
            other => panic!("expected partial cover angle, got {other:?}"),
        }
    }

    #[test]
    fn cover_angle_is_centered_on_direction_to_q() {
        let p = Point::new(0.3, 0.3);
        let q = Point::new(0.3, 0.3 + 0.1);
        match cover_angle(&p, &q, R) {
            CoverAngle::Partial(a) => {
                assert!((a.midpoint() - PI / 2.0).abs() < 1e-9);
            }
            other => panic!("expected partial cover angle, got {other:?}"),
        }
    }

    #[test]
    fn sector_points_inside_neighbor_disk() {
        // Every boundary point of A(p) in the cover-angle sector must lie
        // inside A(q) — the geometric content of Definition 2.
        let p = Point::new(0.0, 0.0);
        let q = Point::new(0.13, 0.07);
        if let CoverAngle::Partial(a) = cover_angle(&p, &q, R) {
            for i in 0..=64 {
                let t = a.start + a.extent * i as f64 / 64.0;
                let boundary = Point::new(R * t.cos(), R * t.sin());
                assert!(
                    boundary.within(&q, R + 1e-9),
                    "boundary point at angle {t} escapes A(q)"
                );
            }
        } else {
            panic!("expected partial cover angle");
        }
    }

    #[test]
    fn directions_outside_cover_angle_escape_neighbor_disk() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(0.1, 0.0);
        if let CoverAngle::Partial(a) = cover_angle(&p, &q, R) {
            // Sample directions strictly outside the arc.
            for i in 1..32 {
                let t = a.end() + (TAU - a.extent) * i as f64 / 32.0;
                if Arc::new(a.start, a.extent).contains(t) {
                    continue;
                }
                let boundary = Point::new(R * t.cos(), R * t.sin());
                assert!(
                    !boundary.within(&q, R - 1e-9),
                    "boundary point at angle {t} should escape A(q)"
                );
            }
        } else {
            panic!("expected partial cover angle");
        }
    }

    #[test]
    fn three_surrounding_nodes_cover_center() {
        // Three neighbors at distance 0.1, 120° apart: each cover angle is
        // 2·arccos(0.25) ≈ 151° wide, so the three cover the circle.
        let p = Point::new(0.5, 0.5);
        let cover: Vec<Point> = (0..3)
            .map(|i| {
                let a = i as f64 * TAU / 3.0;
                p.offset(0.1 * a.cos(), 0.1 * a.sin())
            })
            .collect();
        assert!(covers_disk(&p, &cover, R));
    }

    #[test]
    fn two_opposite_nodes_do_not_cover() {
        let p = Point::new(0.5, 0.5);
        let cover = vec![p.offset(0.1, 0.0), p.offset(-0.1, 0.0)];
        assert!(!covers_disk(&p, &cover, R));
    }

    #[test]
    fn self_in_cover_set_covers() {
        let p = Point::new(0.5, 0.5);
        assert!(covers_disk(&p, &[p], R));
    }

    #[test]
    fn empty_cover_set_never_covers() {
        let p = Point::new(0.5, 0.5);
        assert!(!covers_disk(&p, &[], R));
    }

    #[test]
    fn angular_coverage_fractions() {
        let p = Point::new(0.5, 0.5);
        assert_eq!(angular_coverage(&p, &[], R), 0.0);
        assert_eq!(angular_coverage(&p, &[p], R), 1.0);
        // One neighbor at distance R covers exactly 120°/360° = 1/3.
        let one = vec![p.offset(R, 0.0)];
        assert!((angular_coverage(&p, &one, R) - 1.0 / 3.0).abs() < 1e-9);
        // Two opposite neighbors at 0.1: each covers 2·acos(0.25), no
        // overlap, so the fraction doubles.
        let two = vec![p.offset(0.1, 0.0), p.offset(-0.1, 0.0)];
        let each = 2.0 * (0.25f64).acos() / crate::angle::TAU;
        assert!((angular_coverage(&p, &two, R) - 2.0 * each).abs() < 1e-9);
        assert!(angular_coverage(&p, &two, R) < 1.0);
    }

    #[test]
    fn far_nodes_contribute_nothing() {
        let p = Point::new(0.5, 0.5);
        let cover = vec![Point::new(0.9, 0.9), Point::new(0.1, 0.1)];
        assert!(!covers_disk(&p, &cover, R));
    }
}
