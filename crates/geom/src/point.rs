//! Planar points / station positions.

use serde::{Deserialize, Serialize};

/// A point in the plane. Stations in the simulator live in the unit square
/// `[0, 1] × [0, 1]`, but nothing in this crate assumes that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`. Cheaper than [`Point::dist`]
    /// and sufficient for radius comparisons.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Direction (in radians, `[0, 2π)`) of the vector from `self` to
    /// `other`. Returns `0.0` when the points coincide.
    #[inline]
    pub fn direction_to(&self, other: &Point) -> f64 {
        let a = (other.y - self.y).atan2(other.x - self.x);
        crate::angle::normalize_angle(a)
    }

    /// Whether `other` lies within distance `r` (inclusive) of `self`.
    #[inline]
    pub fn within(&self, other: &Point, r: f64) -> bool {
        self.dist_sq(other) <= r * r
    }

    /// Point at `(self.x + dx, self.y + dy)`.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.9, 0.5);
        assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-12);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn direction_cardinal_axes() {
        let o = Point::new(0.0, 0.0);
        assert!((o.direction_to(&Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.direction_to(&Point::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((o.direction_to(&Point::new(-1.0, 0.0)) - PI).abs() < 1e-12);
        assert!((o.direction_to(&Point::new(0.0, -1.0)) - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn direction_of_coincident_points_is_zero() {
        let p = Point::new(0.3, 0.3);
        assert_eq!(p.direction_to(&p), 0.0);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.2, 0.0);
        assert!(a.within(&b, 0.2));
        assert!(!a.within(&b, 0.19999));
    }

    #[test]
    fn offset_moves_point() {
        let p = Point::new(1.0, 2.0).offset(-0.5, 0.25);
        assert_eq!(p, Point::new(0.5, 2.25));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (0.25, 0.75).into();
        assert_eq!(p, Point::new(0.25, 0.75));
    }
}
