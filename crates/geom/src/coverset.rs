//! Cover sets (Definition 1), `MCS(S)` and `UPDATE(S, S_ACK)`.
//!
//! All functions operate on indices into a caller-provided slice of
//! positions so that MAC protocols can keep talking about station ids.
//!
//! Substitution note (documented in `DESIGN.md`): the paper delegates the
//! `O(n^{4/3})` minimum-cover-set algorithm to an unpublished reference
//! \[18\]. We provide an **exact** search for small sets and a **greedy
//! removal** scheme (minimal, not necessarily minimum, cover sets) for
//! larger ones; both are correct cover sets per Definition 1 as certified
//! by the Theorem 4 angle test, so protocol *behaviour* is preserved —
//! only the asymptotic cost of the (off-line) computation differs.

use crate::arcs::ArcSet;
use crate::cover::{cover_angle, CoverAngle};
use crate::point::Point;

/// Largest set size for which [`min_cover_set`] performs the exact
/// minimum search before falling back to the greedy scheme.
pub const EXACT_MCS_LIMIT: usize = 10;

/// Whether `subset ⊆ set` is a cover set of `set` under the angle-based
/// test: every node of `set` not in `subset` must have its disk covered by
/// the disks of `subset`.
pub fn is_cover_set(points: &[Point], set: &[usize], subset: &[usize], r: f64) -> bool {
    let mut arcs = ArcSet::new();
    'outer: for &p in set {
        if subset.contains(&p) {
            continue;
        }
        arcs.clear();
        for &q in subset {
            match cover_angle(&points[p], &points[q], r) {
                CoverAngle::Full => continue 'outer,
                CoverAngle::Partial(a) => arcs.push(a),
                CoverAngle::Empty => {}
            }
        }
        if !arcs.covers_full_circle() {
            return false;
        }
    }
    true
}

/// Greedy minimal cover set: start from `set` and repeatedly discard a
/// node as long as the surviving subset is still an angle-certified cover
/// set of the *original* set. The result is a cover set of `set` that is
/// *minimal* (no single node can be removed), though not always
/// *minimum*. Worst case `O(n³ log n)`; `n` here is a neighbor count, so
/// small.
///
/// The full re-certification per removal matters: checking only the
/// removal candidate against the survivors would admit sequences where an
/// earlier-removed node relied on a later-removed one. The union of disks
/// still covers it (coverage is preserved under such chains), but the
/// angle-based scheme of Theorem 4 — which is what LAMM and its peers can
/// actually evaluate — may no longer certify it. Keeping every
/// intermediate subset certified matches the paper's Theorem 1 statement.
///
/// Removal order: nodes are tried nearest-to-centroid first, since interior
/// nodes are the ones most likely to be redundant, which empirically gets
/// close to the minimum.
pub fn greedy_cover_set(points: &[Point], set: &[usize], r: f64) -> Vec<usize> {
    let mut current: Vec<usize> = set.to_vec();
    if current.len() <= 1 {
        return current;
    }
    // Centroid of the set.
    let (mut cx, mut cy) = (0.0, 0.0);
    for &i in &current {
        cx += points[i].x;
        cy += points[i].y;
    }
    let centroid = Point::new(cx / current.len() as f64, cy / current.len() as f64);
    let mut order: Vec<usize> = current.clone();
    order.sort_by(|&a, &b| {
        points[a]
            .dist_sq(&centroid)
            .partial_cmp(&points[b].dist_sq(&centroid))
            .expect("coordinates are finite")
            .then(a.cmp(&b))
    });

    let mut trial: Vec<usize> = Vec::with_capacity(current.len());
    for cand in order {
        if current.len() == 1 {
            break;
        }
        trial.clear();
        trial.extend(current.iter().copied().filter(|&x| x != cand));
        if is_cover_set(points, set, &trial, r) {
            std::mem::swap(&mut current, &mut trial);
        }
    }
    current
}

/// Minimum cover set of `set` (the paper's `MCS(S)`).
///
/// For `|set| ≤ EXACT_MCS_LIMIT` this searches subsets in increasing size
/// order and returns a true minimum (under the angle-based coverage test);
/// beyond that it falls back to [`greedy_cover_set`].
///
/// ```
/// use rmm_geom::{min_cover_set, Point};
/// // Two co-located receivers: one of them suffices.
/// let pts = vec![Point::new(0.5, 0.5), Point::new(0.5, 0.5)];
/// let mcs = min_cover_set(&pts, &[0, 1], 0.2);
/// assert_eq!(mcs.len(), 1);
/// ```
pub fn min_cover_set(points: &[Point], set: &[usize], r: f64) -> Vec<usize> {
    let n = set.len();
    if n <= 1 {
        return set.to_vec();
    }
    if n > EXACT_MCS_LIMIT {
        return greedy_cover_set(points, set, r);
    }
    // Subsets by increasing popcount; first hit is a minimum cover set.
    let mut masks: Vec<u32> = (1u32..(1u32 << n)).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut subset: Vec<usize> = Vec::with_capacity(n);
    for mask in masks {
        subset.clear();
        for (bit, &idx) in set.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                subset.push(idx);
            }
        }
        if is_cover_set(points, set, &subset, r) {
            return subset.clone();
        }
    }
    set.to_vec() // unreachable: the full set always covers itself
}

/// The paper's `UPDATE(S, S_ACK)`: the nodes of `set` whose disk is *not*
/// completely covered by the disks of `acked` — i.e. the receivers that
/// still need service in the next LAMM round. Nodes present in `acked`
/// cover themselves and so never appear in the result.
///
/// ```
/// use rmm_geom::{update_uncovered, Point};
/// let pts = vec![Point::new(0.5, 0.5), Point::new(0.65, 0.5)];
/// // Only node 1 ACKed; node 0's disk is not covered by node 1 alone.
/// assert_eq!(update_uncovered(&pts, &[0, 1], &[1], 0.2), vec![0]);
/// // An empty ACK set leaves everything outstanding.
/// assert_eq!(update_uncovered(&pts, &[0, 1], &[], 0.2), vec![0, 1]);
/// ```
pub fn update_uncovered(points: &[Point], set: &[usize], acked: &[usize], r: f64) -> Vec<usize> {
    let mut remaining = Vec::new();
    let mut arcs = ArcSet::new();
    'outer: for &p in set {
        arcs.clear();
        for &q in acked {
            match cover_angle(&points[p], &points[q], r) {
                CoverAngle::Full => continue 'outer,
                CoverAngle::Partial(a) => arcs.push(a),
                CoverAngle::Empty => {}
            }
        }
        if !arcs.covers_full_circle() {
            remaining.push(p);
        }
    }
    remaining
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::TAU;

    const R: f64 = 0.2;

    /// A ring of `n` points at distance `d` around `center`.
    fn ring(center: Point, d: f64, n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / n as f64;
                center.offset(d * a.cos(), d * a.sin())
            })
            .collect()
    }

    #[test]
    fn full_set_is_cover_set_of_itself() {
        let pts = ring(Point::new(0.5, 0.5), 0.1, 6);
        let set: Vec<usize> = (0..6).collect();
        assert!(is_cover_set(&pts, &set, &set, R));
    }

    #[test]
    fn empty_subset_covers_only_empty_set() {
        let pts = vec![Point::new(0.5, 0.5)];
        assert!(is_cover_set(&pts, &[], &[], R));
        assert!(!is_cover_set(&pts, &[0], &[], R));
    }

    #[test]
    fn colocated_duplicate_is_redundant() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.5, 0.5)];
        assert!(is_cover_set(&pts, &[0, 1], &[0], R));
        let mcs = min_cover_set(&pts, &[0, 1], R);
        assert_eq!(mcs.len(), 1);
    }

    #[test]
    fn surrounded_interior_node_is_redundant() {
        // Center node surrounded by a tight ring of 6 at distance 0.05:
        // each ring node's cover angle for the center is wide, and the
        // ring covers the center's disk.
        let mut pts = ring(Point::new(0.5, 0.5), 0.05, 6);
        pts.push(Point::new(0.5, 0.5)); // index 6: interior node
        let set: Vec<usize> = (0..7).collect();
        let subset: Vec<usize> = (0..6).collect();
        assert!(is_cover_set(&pts, &set, &subset, R));
        let mcs = min_cover_set(&pts, &set, R);
        assert!(mcs.len() <= 6);
        assert!(is_cover_set(&pts, &set, &mcs, R));
    }

    #[test]
    fn spread_out_nodes_all_required() {
        // Nodes pairwise farther than R apart: nothing covers anything, so
        // the minimum cover set is the whole set.
        let pts = vec![
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.1),
            Point::new(0.1, 0.9),
            Point::new(0.9, 0.9),
        ];
        let set: Vec<usize> = (0..4).collect();
        let mcs = min_cover_set(&pts, &set, R);
        assert_eq!(mcs.len(), 4);
    }

    #[test]
    fn greedy_result_is_cover_set() {
        let mut pts = ring(Point::new(0.5, 0.5), 0.08, 8);
        pts.extend(ring(Point::new(0.5, 0.5), 0.03, 5));
        let set: Vec<usize> = (0..pts.len()).collect();
        let greedy = greedy_cover_set(&pts, &set, R);
        assert!(is_cover_set(&pts, &set, &greedy, R));
        assert!(greedy.len() < set.len(), "inner ring should be redundant");
    }

    #[test]
    fn exact_mcs_never_larger_than_greedy() {
        let mut pts = ring(Point::new(0.5, 0.5), 0.06, 7);
        pts.push(Point::new(0.5, 0.5));
        pts.push(Point::new(0.52, 0.5));
        let set: Vec<usize> = (0..pts.len()).collect();
        let exact = min_cover_set(&pts, &set, R);
        let greedy = greedy_cover_set(&pts, &set, R);
        assert!(exact.len() <= greedy.len());
        assert!(is_cover_set(&pts, &set, &exact, R));
    }

    #[test]
    fn singleton_set_is_its_own_mcs() {
        let pts = vec![Point::new(0.2, 0.2)];
        assert_eq!(min_cover_set(&pts, &[0], R), vec![0]);
        assert_eq!(greedy_cover_set(&pts, &[0], R), vec![0]);
    }

    #[test]
    fn update_removes_acked_and_covered() {
        // Interior node covered by ring; if the whole ring ACKs, the
        // interior node is covered and drops out.
        let mut pts = ring(Point::new(0.5, 0.5), 0.05, 6);
        pts.push(Point::new(0.5, 0.5));
        let set: Vec<usize> = (0..7).collect();
        let acked: Vec<usize> = (0..6).collect();
        let rem = update_uncovered(&pts, &set, &acked, R);
        assert!(rem.is_empty());
    }

    #[test]
    fn update_keeps_uncovered_nodes() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.65, 0.5)];
        // Only node 1 acked; node 0's disk is not covered by node 1 alone.
        let rem = update_uncovered(&pts, &[0, 1], &[1], R);
        assert_eq!(rem, vec![0]);
    }

    #[test]
    fn update_with_no_acks_keeps_everything() {
        let pts = ring(Point::new(0.5, 0.5), 0.05, 4);
        let set: Vec<usize> = (0..4).collect();
        assert_eq!(update_uncovered(&pts, &set, &[], R), set);
    }

    #[test]
    fn mcs_of_large_set_falls_back_to_greedy() {
        let mut pts = ring(Point::new(0.5, 0.5), 0.08, 10);
        pts.extend(ring(Point::new(0.5, 0.5), 0.02, 6));
        let set: Vec<usize> = (0..pts.len()).collect();
        assert!(set.len() > EXACT_MCS_LIMIT);
        let mcs = min_cover_set(&pts, &set, R);
        assert!(is_cover_set(&pts, &set, &mcs, R));
    }
}
