//! Client helpers: single-request submission, the serial local oracle,
//! metrics scraping, and the concurrent soak driver the CI gate runs.
//!
//! The soak driver is deliberately adversarial: many connections, each
//! pipelining many requests without waiting, all eight protocols
//! interleaved, a slice of them traced — and every response byte-diffed
//! against [`local_lines`], the same cell computed serially in-process.
//! Bit-determinism plus canonical results make that a strict equality
//! check, not a tolerance check.

use crate::proto::{compute_cell, run_response_lines, Request, Response, RunRequest};
use rmm_mac::ProtocolKind;
use rmm_workload::Scenario;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Generous per-read safety net so a wedged server fails a test run
/// instead of hanging it.
const READ_TIMEOUT: Duration = Duration::from_secs(300);

fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    Ok(stream)
}

/// The correlation id a response line belongs to, if any.
fn response_id(response: &Response) -> Option<u64> {
    match response {
        Response::Started { id }
        | Response::Event { id, .. }
        | Response::Profile { id, .. }
        | Response::Result { id, .. } => Some(*id),
        Response::Error { id, .. } => *id,
        _ => None,
    }
}

/// Whether this line ends its request's response stream.
fn is_terminal(response: &Response) -> bool {
    matches!(response, Response::Result { .. } | Response::Error { .. })
}

/// Sends one run request on a fresh connection and collects its full
/// response-line stream (`Started` … terminal line), verbatim.
pub fn submit_one(addr: impl ToSocketAddrs, req: &RunRequest) -> std::io::Result<Vec<String>> {
    let mut stream = connect(addr)?;
    writeln!(
        stream,
        "{}",
        serde_json::to_string(&Request::Run(req.clone())).expect("request serializes")
    )?;
    stream.flush()?;
    let mut lines = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::other("server closed before terminal line"));
        }
        let text = line.trim_end_matches('\n').to_string();
        let response: Response = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::other(format!("bad response line: {e}")))?;
        let done = is_terminal(&response);
        lines.push(text);
        if done {
            return Ok(lines);
        }
    }
}

/// The serial oracle: computes the same cell in-process and renders the
/// exact line sequence a cold server would stream for it. `None` if the
/// protocol name does not parse.
pub fn local_lines(req: &RunRequest) -> Option<Vec<String>> {
    let protocol = ProtocolKind::parse(&req.protocol)?;
    let cell = compute_cell(&req.scenario, protocol, req.seed, req.trace, req.profile);
    Some(run_response_lines(req.id, &cell, false))
}

/// Fetches the Prometheus metrics snapshot over the JSONL protocol.
pub fn fetch_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = connect(addr)?;
    writeln!(
        stream,
        "{}",
        serde_json::to_string(&Request::Metrics).expect("request serializes")
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    match serde_json::from_str::<Response>(line.trim()) {
        Ok(Response::Metrics { text }) => Ok(text),
        other => Err(std::io::Error::other(format!(
            "expected a Metrics response, got {other:?}"
        ))),
    }
}

/// Reads one counter out of a Prometheus text snapshot. The `name` is
/// matched exactly (e.g. `rmm_serve_engine_runs_total`).
pub fn parse_metric(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| match l.split_once(' ') {
            Some((n, v)) if n == name => v.trim().parse().ok(),
            _ => None,
        })
}

/// Asks the server to drain and waits for the `Draining` ack. Any
/// other reply — notably the capacity `Error` a full server sends
/// before the connection even reaches the request handler — is an
/// error, so callers can retry instead of mistaking it for the ack.
pub fn request_shutdown(addr: impl ToSocketAddrs) -> std::io::Result<()> {
    let mut stream = connect(addr)?;
    writeln!(
        stream,
        "{}",
        serde_json::to_string(&Request::Shutdown).expect("request serializes")
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    match serde_json::from_str::<Response>(line.trim()) {
        Ok(Response::Draining) => Ok(()),
        other => Err(std::io::Error::other(format!(
            "expected a Draining ack, got {other:?}"
        ))),
    }
}

/// Shape of one soak campaign.
#[derive(Debug, Clone)]
pub struct SoakSpec {
    /// Total run requests, spread over every protocol in
    /// [`ProtocolKind::EVERY`] round-robin with distinct seeds.
    pub requests: usize,
    /// Concurrent connections; each pipelines its share of the
    /// requests without waiting for responses.
    pub conns: usize,
    /// Scenario every request uses (seeds differ, so cells differ).
    pub scenario: Scenario,
    /// First seed; request `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Request a trace on every n-th request (0 = never).
    pub trace_every: usize,
    /// Require every response to come from the cache and the engine-run
    /// counter to stay flat (the warm-sweep gate).
    pub expect_cached: bool,
}

/// What a soak campaign observed.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Requests submitted and byte-verified.
    pub requests: usize,
    /// How many terminal lines were `cached: true`.
    pub cached: usize,
    /// Engine runs the server performed during the campaign (from the
    /// metrics counter).
    pub engine_runs: u64,
    /// Cache hits the server counted during the campaign.
    pub cache_hits: u64,
}

fn soak_request(spec: &SoakSpec, i: usize) -> RunRequest {
    RunRequest {
        id: i as u64,
        protocol: ProtocolKind::EVERY[i % ProtocolKind::EVERY.len()]
            .name()
            .to_string(),
        scenario: spec.scenario.clone(),
        seed: spec.seed_base + i as u64,
        trace: spec.trace_every != 0 && i.is_multiple_of(spec.trace_every),
        profile: false,
    }
}

/// Runs one soak campaign against `addr` and byte-verifies every
/// response stream against the serial in-process oracle. Any
/// divergence — missing line, reordered line within an id, a single
/// differing byte — is an `Err` describing the first mismatch.
pub fn soak(addr: &str, spec: &SoakSpec) -> Result<SoakReport, String> {
    assert!(spec.conns > 0, "soak needs at least one connection");
    let before = fetch_metrics(addr).map_err(|e| format!("metrics before soak: {e}"))?;

    // Serial oracle first: the expected line stream per request id.
    let mut expected: HashMap<u64, Vec<String>> = HashMap::with_capacity(spec.requests);
    for i in 0..spec.requests {
        let req = soak_request(spec, i);
        let lines = local_lines(&req).expect("soak protocols all parse");
        expected.insert(req.id, lines);
    }

    // Fire the campaign: `conns` threads, each pipelining its slice.
    let mut collected: HashMap<u64, Vec<String>> = HashMap::with_capacity(spec.requests);
    let mut workers = Vec::with_capacity(spec.conns);
    for c in 0..spec.conns {
        let ids: Vec<usize> = (c..spec.requests).step_by(spec.conns).collect();
        if ids.is_empty() {
            continue;
        }
        let spec = spec.clone();
        let addr = addr.to_string();
        workers.push(std::thread::spawn(
            move || -> Result<HashMap<u64, Vec<String>>, String> {
                let stream = connect(&addr).map_err(|e| format!("conn {c}: {e}"))?;
                let write_half = stream.try_clone().map_err(|e| format!("conn {c}: {e}"))?;
                let reqs: Vec<RunRequest> = ids.iter().map(|&i| soak_request(&spec, i)).collect();
                let pending = reqs.len();
                let writer = std::thread::spawn(move || -> std::io::Result<()> {
                    let mut out = std::io::BufWriter::new(write_half);
                    for req in &reqs {
                        writeln!(
                            out,
                            "{}",
                            serde_json::to_string(&Request::Run(req.clone()))
                                .expect("request serializes")
                        )?;
                    }
                    out.flush()
                });
                let mut got: HashMap<u64, Vec<String>> = HashMap::with_capacity(pending);
                let mut done = 0usize;
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                while done < pending {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => return Err(format!("conn {c}: server closed early")),
                        Ok(_) => {}
                        Err(e) => return Err(format!("conn {c}: read: {e}")),
                    }
                    let text = line.trim_end_matches('\n').to_string();
                    let response: Response = serde_json::from_str(&text)
                        .map_err(|e| format!("conn {c}: bad response line: {e}"))?;
                    let Some(id) = response_id(&response) else {
                        return Err(format!("conn {c}: unaddressed response: {text}"));
                    };
                    if is_terminal(&response) {
                        done += 1;
                    }
                    got.entry(id).or_default().push(text);
                }
                writer
                    .join()
                    .map_err(|_| format!("conn {c}: writer panicked"))?
                    .map_err(|e| format!("conn {c}: write: {e}"))?;
                Ok(got)
            },
        ));
    }
    for worker in workers {
        let got = worker
            .join()
            .map_err(|_| "soak worker panicked".to_string())??;
        collected.extend(got);
    }

    // Byte-verify: every stream must match the oracle exactly, except
    // that the terminal line may be the `cached: true` twin.
    let mut cached = 0usize;
    for (id, want) in &expected {
        let got = collected
            .get(id)
            .ok_or_else(|| format!("request {id}: no response stream"))?;
        if got.len() != want.len() {
            return Err(format!(
                "request {id}: got {} lines, expected {}",
                got.len(),
                want.len()
            ));
        }
        for (k, (g, w)) in got.iter().zip(want).enumerate() {
            if g == w {
                continue;
            }
            // The final line may legitimately be the cached replay.
            if k == want.len() - 1 && *g == w.replacen("\"cached\":false", "\"cached\":true", 1) {
                cached += 1;
                continue;
            }
            return Err(format!(
                "request {id}, line {k}: byte mismatch\n  got:  {g}\n  want: {w}"
            ));
        }
    }
    if spec.expect_cached && cached != spec.requests {
        return Err(format!(
            "expected all {} responses cached, only {cached} were",
            spec.requests
        ));
    }

    let after = fetch_metrics(addr).map_err(|e| format!("metrics after soak: {e}"))?;
    let delta = |name: &str| {
        parse_metric(&after, name).unwrap_or(0) - parse_metric(&before, name).unwrap_or(0)
    };
    let engine_runs = delta("rmm_serve_engine_runs_total");
    if spec.expect_cached && engine_runs != 0 {
        return Err(format!(
            "expected a fully-cached sweep but the engine ran {engine_runs} times"
        ));
    }
    Ok(SoakReport {
        requests: spec.requests,
        cached,
        engine_runs,
        cache_hits: delta("rmm_serve_cache_hits_total"),
    })
}

/// Renders a soak report for the CLI / CI log.
pub fn render_soak(report: &SoakReport) -> String {
    format!(
        "soak ok: {} requests byte-identical to the serial oracle ({} cached, {} engine runs, {} cache hits)",
        report.requests, report.cached, report.engine_runs, report.cache_hits
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_metric_reads_counters() {
        let text = "# TYPE rmm_serve_requests_total counter\nrmm_serve_requests_total 41\nrmm_serve_workers 2\n";
        assert_eq!(parse_metric(text, "rmm_serve_requests_total"), Some(41));
        assert_eq!(parse_metric(text, "rmm_serve_workers"), Some(2));
        assert_eq!(parse_metric(text, "rmm_serve_missing"), None);
    }

    #[test]
    fn oracle_rejects_unknown_protocols() {
        let req = RunRequest {
            id: 0,
            protocol: "carrier-pigeon".into(),
            scenario: Scenario::default(),
            seed: 0,
            trace: false,
            profile: false,
        };
        assert!(local_lines(&req).is_none());
    }

    #[test]
    fn soak_requests_cover_every_protocol() {
        let spec = SoakSpec {
            requests: 16,
            conns: 4,
            scenario: Scenario::default(),
            seed_base: 100,
            trace_every: 5,
            expect_cached: false,
        };
        let names: std::collections::HashSet<String> =
            (0..16).map(|i| soak_request(&spec, i).protocol).collect();
        assert_eq!(names.len(), ProtocolKind::EVERY.len());
        let traced = (0..16).filter(|&i| soak_request(&spec, i).trace).count();
        assert_eq!(traced, 4, "every 5th of 16 requests is traced");
        // Distinct seeds => distinct cells even with one scenario.
        let seeds: std::collections::HashSet<u64> =
            (0..16).map(|i| soak_request(&spec, i).seed).collect();
        assert_eq!(seeds.len(), 16);
    }
}
