//! Content-addressed result cache, backed by the fleet's crash-safe
//! manifest format.
//!
//! Every completed cell is stored under a key derived purely from its
//! *content*: protocol, scenario JSON, seed, and the trace/profile
//! flags, all folded through FNV-1a together with the wire-protocol
//! version. Because the engine is bit-deterministic, replaying a cached
//! cell is byte-identical to recomputing it — the cache is a pure
//! memoization layer, never an approximation.
//!
//! On disk the cache is a manifest (`header` + one digest-checked JSONL
//! entry per cell), so it inherits PR 4's crash-safety: appends are
//! flushed per line, a torn tail is dropped on load, and the header
//! carries both the serve options hash and the scenario *schema*
//! fingerprint. A cache written by a build with a different scenario
//! layout or wire protocol is discarded (with a warning) rather than
//! replayed — unlike a sweep resume, a stale cache is never an error,
//! just a cold start.

use crate::proto::{ServeCell, PROTO_VERSION};
use rmm_fleet::{hex, Fnv1a, JobId, Manifest, ManifestError, ManifestHeader, MANIFEST_VERSION};
use rmm_mac::ProtocolKind;
use rmm_workload::Scenario;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Computes the content address of one cell. Everything that can change
/// the response bytes is hashed; nothing else is.
pub fn cache_key(
    protocol: ProtocolKind,
    scenario: &Scenario,
    seed: u64,
    trace: bool,
    profile: bool,
) -> String {
    let mut h = Fnv1a::new();
    h.write_str("serve");
    h.write_u64(u64::from(PROTO_VERSION));
    h.write_str(protocol.name());
    h.write_str(&serde_json::to_string(scenario).expect("scenario serializes"));
    h.write_u64(seed);
    h.write_u64(u64::from(trace) << 1 | u64::from(profile));
    format!("{}/{}", protocol.name(), hex(h.finish()))
}

/// The serve-side result cache: an in-memory index over an optional
/// on-disk manifest. All methods take `&self`; the store is shared
/// across connection threads behind an `Arc`.
pub struct CacheStore {
    manifest: Option<Manifest>,
    index: Mutex<HashMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn cache_header(schema: u32) -> ManifestHeader {
    let mut h = Fnv1a::new();
    h.write_str("serve");
    h.write_u64(u64::from(PROTO_VERSION));
    ManifestHeader {
        sweep: "serve-cache".into(),
        options_hash: hex(h.finish()),
        jobs: 0,
        version: MANIFEST_VERSION,
        schema,
    }
}

impl CacheStore {
    /// Opens the cache. With `path: None` the cache is memory-only (it
    /// dies with the server). With a path, compatible entries from a
    /// previous server are loaded back in; a missing file starts empty,
    /// and a stale or corrupt file (other schema, other wire protocol,
    /// unreadable header) is *discarded* with a warning and rebuilt
    /// from scratch.
    pub fn open(path: Option<&Path>, schema: u32) -> std::io::Result<CacheStore> {
        let header = cache_header(schema);
        let Some(path) = path else {
            return Ok(CacheStore {
                manifest: None,
                index: Mutex::new(HashMap::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            });
        };
        let preserved = match Manifest::load(path, &header) {
            Ok(entries) => entries,
            Err(ManifestError::Missing) => Vec::new(),
            Err(e @ (ManifestError::Stale { .. } | ManifestError::Corrupt(_))) => {
                eprintln!(
                    "rmm-serve: discarding incompatible cache at {}: {e}",
                    path.display()
                );
                Vec::new()
            }
            Err(ManifestError::Io(e)) => return Err(e),
        };
        let mut index = HashMap::with_capacity(preserved.len());
        for (id, result) in &preserved {
            index.insert(id.point.clone(), result.clone());
        }
        let manifest = Manifest::create(path, &header, &preserved)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(CacheStore {
            manifest: Some(manifest),
            index: Mutex::new(index),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Looks a cell up by content key, counting a hit or a miss. An
    /// unparseable stored cell (which a digest-checked manifest should
    /// never produce) degrades to a miss.
    pub fn get(&self, key: &str) -> Option<ServeCell> {
        let stored = self
            .index
            .lock()
            .expect("cache index poisoned")
            .get(key)
            .cloned();
        match stored.and_then(|json| serde_json::from_str(&json).ok()) {
            Some(cell) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores one completed cell under its content key and appends it
    /// to the on-disk manifest. Concurrent identical misses may race
    /// here; both compute the same bytes, so last-write-wins is
    /// harmless and the on-load index dedups the duplicate line.
    pub fn put(&self, key: &str, seed: u64, cell: &ServeCell) {
        let json = serde_json::to_string(cell).expect("cell serializes");
        if let Some(manifest) = &self.manifest {
            manifest.append(&JobId::new("serve", key, seed), &json);
        }
        self.index
            .lock()
            .expect("cache index poisoned")
            .insert(key.to_string(), json);
    }

    /// Number of distinct cached cells.
    pub fn len(&self) -> usize {
        self.index.lock().expect("cache index poisoned").len()
    }

    /// Whether the cache holds no cells yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache since this store opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the engine since this store opened.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::compute_cell;

    fn tiny() -> Scenario {
        Scenario {
            n_nodes: 8,
            sim_slots: 200,
            n_runs: 1,
            ..Scenario::default()
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rmm-serve-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.jsonl")
    }

    #[test]
    fn key_depends_on_every_input() {
        let s = tiny();
        let base = cache_key(ProtocolKind::Bmmm, &s, 1, false, false);
        assert_ne!(base, cache_key(ProtocolKind::Bmw, &s, 1, false, false));
        assert_ne!(base, cache_key(ProtocolKind::Bmmm, &s, 2, false, false));
        assert_ne!(base, cache_key(ProtocolKind::Bmmm, &s, 1, true, false));
        assert_ne!(base, cache_key(ProtocolKind::Bmmm, &s, 1, false, true));
        let mut other = s.clone();
        other.n_nodes += 1;
        assert_ne!(base, cache_key(ProtocolKind::Bmmm, &other, 1, false, false));
        assert_eq!(base, cache_key(ProtocolKind::Bmmm, &s, 1, false, false));
    }

    #[test]
    fn memory_cache_round_trips_and_counts() {
        let cache = CacheStore::open(None, 7).unwrap();
        let s = tiny();
        let key = cache_key(ProtocolKind::Lamm, &s, 3, true, false);
        assert!(cache.get(&key).is_none());
        let cell = compute_cell(&s, ProtocolKind::Lamm, 3, true, false);
        cache.put(&key, 3, &cell);
        let back = cache.get(&key).expect("cached");
        assert_eq!(
            serde_json::to_string(&back.result).unwrap(),
            serde_json::to_string(&cell.result).unwrap()
        );
        assert_eq!(back.trace.as_deref(), cell.trace.as_deref());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn disk_cache_survives_reopen() {
        let path = tmp("reopen");
        let s = tiny();
        let key = cache_key(ProtocolKind::TangGerla, &s, 5, false, false);
        {
            let cache = CacheStore::open(Some(&path), 7).unwrap();
            cache.put(
                &key,
                5,
                &compute_cell(&s, ProtocolKind::TangGerla, 5, false, false),
            );
            assert_eq!(cache.len(), 1);
        }
        let cache = CacheStore::open(Some(&path), 7).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn schema_drift_discards_disk_cache() {
        let path = tmp("schema");
        let s = tiny();
        let key = cache_key(ProtocolKind::Bsma, &s, 1, false, false);
        {
            let cache = CacheStore::open(Some(&path), 7).unwrap();
            cache.put(
                &key,
                1,
                &compute_cell(&s, ProtocolKind::Bsma, 1, false, false),
            );
        }
        let cache = CacheStore::open(Some(&path), 8).unwrap();
        assert!(cache.is_empty(), "other schema must start cold");
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn");
        let s = tiny();
        {
            let cache = CacheStore::open(Some(&path), 7).unwrap();
            for seed in 0..3 {
                let key = cache_key(ProtocolKind::Ieee80211, &s, seed, false, false);
                cache.put(
                    &key,
                    seed,
                    &compute_cell(&s, ProtocolKind::Ieee80211, seed, false, false),
                );
            }
        }
        // Simulate a kill mid-append: truncate the last line in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - text.lines().last().unwrap().len() / 2;
        std::fs::write(&path, &text.as_bytes()[..keep]).unwrap();
        let cache = CacheStore::open(Some(&path), 7).unwrap();
        assert_eq!(
            cache.len(),
            2,
            "intact prefix survives, torn tail is dropped"
        );
    }
}
