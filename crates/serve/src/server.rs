//! The daemon: a TCP listener, one reader/writer thread pair per
//! connection, and the shared [`ServicePool`] + [`CacheStore`] behind
//! them.
//!
//! Connection life cycle: the accept loop admits up to
//! [`ServeConfig::max_conns`] concurrent connections (excess
//! connections get one `Error` line and are closed — load shedding, not
//! queueing). Each connection runs a reader thread (parses request
//! lines, serves cache hits inline, submits misses to the pool) and a
//! writer thread (serializes all response lines for the connection, so
//! pool workers never block on a slow client socket longer than the
//! channel hand-off). When a client disconnects, its still-queued jobs
//! are cancelled — work nobody will read is never run.
//!
//! Backpressure is layered: the pool's bounded queue blocks readers
//! once `queue_cap` jobs are waiting, which stops them draining their
//! sockets, which fills the kernel TCP window — the client's writes
//! stall. No unbounded buffer anywhere.
//!
//! Graceful drain (`Shutdown` request or [`Server::begin_shutdown`]):
//! stop accepting, refuse new engine work, finish in-flight jobs,
//! flush the cache manifest, join every thread.

use crate::cache::{cache_key, CacheStore};
use crate::proto::{
    compute_cell, encode, run_response_lines, Request, Response, RunRequest, PROTO_VERSION,
};
use rmm_fleet::{JobTicket, ServicePool};
use rmm_mac::ProtocolKind;
use rmm_stats::{render_registry, MetricsRegistry};
use rmm_workload::scenario_schema_hash;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a [`Server`] is configured; `Default` is a loopback server on an
/// OS-assigned port with a memory-only cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4860` (`:0` picks a free port).
    pub addr: String,
    /// Engine worker threads (0 = one per core).
    pub workers: usize,
    /// Concurrent-connection cap; connections beyond it are refused
    /// with an `Error` line.
    pub max_conns: usize,
    /// Bounded engine-queue depth; readers block (and TCP backpressure
    /// engages) once this many jobs are waiting.
    pub queue_cap: usize,
    /// On-disk result cache (manifest format). `None` = memory-only.
    pub cache_path: Option<PathBuf>,
    /// Suppress the startup line on stdout.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_conns: 64,
            queue_cap: 1024,
            cache_path: None,
            quiet: true,
        }
    }
}

struct Shared {
    pool: ServicePool,
    cache: CacheStore,
    draining: AtomicBool,
    conns_open: Mutex<usize>,
    conn_closed: Condvar,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is parked in `accept()`; poke it awake so it
        // observes the flag. The loop drops this connection on sight.
        let _ = TcpStream::connect(self.addr);
    }

    fn metrics_text(&self) -> String {
        let mut reg = MetricsRegistry::new();
        reg.add(
            "serve_requests_total",
            self.requests.load(Ordering::Relaxed),
        );
        reg.add("serve_cache_hits_total", self.cache.hits());
        reg.add("serve_cache_misses_total", self.cache.misses());
        reg.add("serve_cache_entries", self.cache.len() as u64);
        reg.add("serve_engine_runs_total", self.pool.executed());
        reg.add("serve_jobs_cancelled_total", self.pool.cancelled());
        reg.add(
            "serve_conns_accepted_total",
            self.conns_accepted.load(Ordering::Relaxed),
        );
        reg.add(
            "serve_conns_rejected_total",
            self.conns_rejected.load(Ordering::Relaxed),
        );
        reg.add("serve_errors_total", self.errors.load(Ordering::Relaxed));
        reg.add("serve_workers", self.pool.workers() as u64);
        render_registry(&reg, "rmm")
    }
}

/// A running serve daemon. Dropping the handle does *not* stop the
/// server; call [`Server::begin_shutdown`] (or send a `Shutdown`
/// request) and then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    addr: SocketAddr,
}

impl Server {
    /// Binds, opens the cache, starts the worker pool and the accept
    /// loop, and returns immediately.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = CacheStore::open(config.cache_path.as_deref(), scenario_schema_hash())?;
        let shared = Arc::new(Shared {
            pool: ServicePool::with_capacity(config.workers, config.queue_cap),
            cache,
            draining: AtomicBool::new(false),
            conns_open: Mutex::new(0),
            conn_closed: Condvar::new(),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            addr,
        });
        if !config.quiet {
            println!(
                "rmm-serve listening on {addr} ({} workers, cache: {})",
                shared.pool.workers(),
                config
                    .cache_path
                    .as_deref()
                    .map_or("memory".to_string(), |p| p.display().to_string()),
            );
        }
        let max_conns = config.max_conns;
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared, max_conns))
        };
        Ok(Server {
            shared,
            accept,
            addr,
        })
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current metrics snapshot in Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Starts a graceful drain: stop accepting connections and refuse
    /// new engine work. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Waits for the drain to complete: accept loop exited, every
    /// connection closed, every in-flight job finished, workers joined.
    pub fn join(self) {
        let _ = self.accept.join();
        let mut open = self
            .shared
            .conns_open
            .lock()
            .expect("connection count poisoned");
        while *open > 0 {
            open = self
                .shared
                .conn_closed
                .wait(open)
                .expect("connection count poisoned");
        }
        drop(open);
        self.shared.pool.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, max_conns: usize) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let over_cap = {
            let mut open = shared.conns_open.lock().expect("connection count poisoned");
            if *open >= max_conns {
                true
            } else {
                *open += 1;
                false
            }
        };
        if over_cap {
            shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = writeln!(
                stream,
                "{}",
                encode(&Response::Error {
                    id: None,
                    message: format!("server at connection capacity ({max_conns})"),
                })
            );
            continue; // dropping the stream closes it
        }
        shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            handle_conn(stream, &shared);
            let mut open = shared.conns_open.lock().expect("connection count poisoned");
            *open -= 1;
            shared.conn_closed.notify_all();
        });
    }
}

/// Runs one connection to completion: spawns the writer, loops over
/// request lines, and on disconnect cancels whatever the client will
/// never read.
fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || writer_loop(write_half, out_rx));
    let mut outstanding: Vec<JobTicket> = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with("GET ") {
            // Plain-HTTP scrape of the metrics endpoint: answer one
            // HTTP/1.0 response and close.
            let body = shared.metrics_text();
            let _ = out_tx.send(format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            ));
            break;
        }
        let request = match serde_json::from_str::<Request>(trimmed) {
            Ok(request) => request,
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(encode(&Response::Error {
                    id: None,
                    message: format!("unparseable request: {e}"),
                }));
                continue;
            }
        };
        match request {
            Request::Ping => {
                let _ = out_tx.send(encode(&Response::Pong {
                    version: PROTO_VERSION,
                }));
            }
            Request::Metrics => {
                let _ = out_tx.send(encode(&Response::Metrics {
                    text: shared.metrics_text(),
                }));
            }
            Request::Shutdown => {
                let _ = out_tx.send(encode(&Response::Draining));
                shared.begin_drain();
            }
            Request::Run(req) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if let Some(ticket) = serve_run(req, shared, &out_tx) {
                    outstanding.push(ticket);
                }
            }
        }
    }
    // The client is gone: queued jobs it will never read are cancelled
    // (running ones finish — cancellation is queue-removal). Dropping
    // our sender lets the writer drain and exit once the last in-flight
    // job drops its clone.
    for ticket in &outstanding {
        ticket.cancel();
    }
    drop(out_tx);
    let _ = writer.join();
}

/// Validates and serves one run request: cache hit replays inline, a
/// miss is scheduled on the pool (unless draining). Returns the
/// cancellation ticket of a scheduled job.
fn serve_run(
    req: RunRequest,
    shared: &Arc<Shared>,
    out_tx: &mpsc::Sender<String>,
) -> Option<JobTicket> {
    let id = req.id;
    let send_error = |message: String| {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        let _ = out_tx.send(encode(&Response::Error {
            id: Some(id),
            message,
        }));
    };
    let Some(protocol) = ProtocolKind::parse(&req.protocol) else {
        send_error(format!("unknown protocol {:?}", req.protocol));
        return None;
    };
    if req.scenario.n_nodes == 0 || req.scenario.n_runs == 0 {
        send_error("scenario needs n_nodes >= 1 and n_runs >= 1".into());
        return None;
    }
    if let Err(e) = req.scenario.faults.validate(req.scenario.n_nodes) {
        send_error(format!("invalid fault plan: {e}"));
        return None;
    }
    if let Err(e) = req.scenario.churn.validate(req.scenario.n_nodes) {
        send_error(format!("invalid churn plan: {e}"));
        return None;
    }
    let key = cache_key(protocol, &req.scenario, req.seed, req.trace, req.profile);
    if let Some(cell) = shared.cache.get(&key) {
        for line in run_response_lines(id, &cell, true) {
            let _ = out_tx.send(line);
        }
        return None;
    }
    if shared.draining.load(Ordering::SeqCst) {
        send_error("server is draining".into());
        return None;
    }
    let job_shared = Arc::clone(shared);
    let out_tx = out_tx.clone();
    Some(shared.pool.submit(move || {
        let cell = compute_cell(&req.scenario, protocol, req.seed, req.trace, req.profile);
        job_shared.cache.put(&key, req.seed, &cell);
        for line in run_response_lines(id, &cell, false) {
            let _ = out_tx.send(line);
        }
    }))
}

/// Serializes every response line of one connection. A dead socket
/// drains the channel without writing, so producers never block on it.
fn writer_loop(stream: TcpStream, out_rx: mpsc::Receiver<String>) {
    let mut out = std::io::BufWriter::new(stream);
    let mut broken = false;
    while let Ok(line) = out_rx.recv() {
        if broken {
            continue;
        }
        if writeln!(out, "{line}").is_err() {
            broken = true;
            continue;
        }
        // Batch whatever is already queued before paying the flush.
        while let Ok(line) = out_rx.try_recv() {
            if writeln!(out, "{line}").is_err() {
                broken = true;
                break;
            }
        }
        if !broken && out.flush().is_err() {
            broken = true;
        }
    }
}
