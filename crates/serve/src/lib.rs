//! `rmm-serve`: the simulator as a long-lived service.
//!
//! Everything below the workload layer is bit-deterministic, so a
//! simulation cell is a *pure function* of `(protocol, scenario, seed,
//! flags)`. This crate exploits that twice:
//!
//! 1. **Serving** — a TCP daemon ([`Server`]) accepts JSONL requests,
//!    schedules engine work on a resident worker pool
//!    ([`rmm_fleet::ServicePool`]), and streams progress, trace events,
//!    and results back live, interleaved per connection.
//! 2. **Memoizing** — completed cells land in a content-addressed
//!    cache ([`CacheStore`]) keyed by a hash of exactly the inputs that
//!    determine the output. A repeated sweep is answered entirely from
//!    cache, byte-for-byte identical, with zero engine invocations —
//!    and the cache file survives restarts because it *is* a crash-safe
//!    fleet manifest.
//!
//! The [`client`] module carries the other half of the contract: a
//! serial in-process oracle plus a concurrent soak driver that
//! byte-diffs served responses against it, which is how CI proves the
//! service layer adds no nondeterminism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::{cache_key, CacheStore};
pub use client::{
    fetch_metrics, local_lines, parse_metric, render_soak, request_shutdown, soak, submit_one,
    SoakReport, SoakSpec,
};
pub use proto::{
    canonical_result, compute_cell, encode, run_response_lines, Request, Response, RunRequest,
    ServeCell, PROTO_VERSION,
};
pub use server::{ServeConfig, Server};
