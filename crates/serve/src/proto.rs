//! The wire protocol: JSON Lines over TCP, one request or response
//! object per line.
//!
//! Requests and responses are externally-tagged serde enums, so a run
//! request looks like
//!
//! ```text
//! {"Run":{"id":1,"protocol":"bmmm","scenario":{...},"seed":7,"trace":true,"profile":false}}
//! ```
//!
//! and the server answers with a `Started` line, the streamed
//! `Event`/`Profile` lines the request asked for, and a final `Result`
//! (or `Error`) line carrying the same `id`. Responses to different
//! in-flight requests on one connection may interleave; the lines for
//! one `id` always arrive in order. Everything in a `Result` is
//! **canonical** (wall-clock provenance zeroed, see
//! [`canonical_result`]), which is what makes a served response
//! byte-identical to a local serial run of the same cell — and lets the
//! cache replay it verbatim.

use rmm_mac::ProtocolKind;
use rmm_sim::TraceEvent;
use rmm_stats::ProfileReport;
use rmm_workload::observe::PhaseTimings;
use rmm_workload::{
    run_one, run_one_profiled, run_one_profiled_traced, run_one_traced, RunResult, Scenario,
};
use serde::{Deserialize, Serialize};

/// Wire-protocol version, folded into the cache header so a protocol
/// change can never replay cells written under another framing.
pub const PROTO_VERSION: u32 = 1;

/// One simulation cell to run (or fetch from cache).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRequest {
    /// Client-chosen correlation id echoed on every response line.
    pub id: u64,
    /// Protocol name (display name or CLI alias, case-insensitive).
    pub protocol: String,
    /// Full scenario for the run.
    pub scenario: Scenario,
    /// Seed of the run (a request is always a single cell; use many
    /// requests for a sweep).
    pub seed: u64,
    /// Stream the run's `TraceEvent` log back as `Event` lines.
    pub trace: bool,
    /// Attach the engine's phase-timer attribution report. Profile
    /// timings are wall-clock and therefore *not* byte-reproducible; a
    /// cached cell replays the timings of the run that produced it.
    pub profile: bool,
}

/// A client request line.
///
/// One short-lived value per parsed line; the `Run` payload dwarfing
/// the flag-only variants costs nothing here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Run (or serve from cache) one simulation cell.
    Run(RunRequest),
    /// Fetch the Prometheus metrics snapshot.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain: stop accepting connections, finish
    /// in-flight work, flush the cache, exit.
    Shutdown,
}

/// A server response line.
///
/// Transient per-line values; `Result`'s payload dominating the
/// stream-control variants is expected and harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// The run request was accepted (cache hit or scheduled).
    Started {
        /// Correlation id from the request.
        id: u64,
    },
    /// One streamed trace event of a `trace: true` run.
    Event {
        /// Correlation id from the request.
        id: u64,
        /// The protocol event.
        event: TraceEvent,
    },
    /// The engine phase-timer report of a `profile: true` run.
    Profile {
        /// Correlation id from the request.
        id: u64,
        /// Attribution report (wall-clock; not byte-reproducible).
        profile: ProfileReport,
    },
    /// Terminal success line of a run request.
    Result {
        /// Correlation id from the request.
        id: u64,
        /// Whether the cell came from the result cache without touching
        /// the engine.
        cached: bool,
        /// The canonical run result (wall-clock provenance zeroed).
        result: RunResult,
    },
    /// Prometheus text exposition, answering `Metrics`.
    Metrics {
        /// The rendered snapshot.
        text: String,
    },
    /// Liveness reply, answering `Ping`.
    Pong {
        /// Server wire-protocol version.
        version: u32,
    },
    /// Acknowledges `Shutdown`; the server stops accepting work.
    Draining,
    /// Terminal failure line (`id` absent for connection-level errors).
    Error {
        /// Correlation id, when the error belongs to one request.
        id: Option<u64>,
        /// What went wrong.
        message: String,
    },
}

/// Everything one completed cell produced: the canonical result plus
/// the optional trace/profile attachments. This is the unit the cache
/// stores, keyed by content hash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeCell {
    /// Canonical run result.
    pub result: RunResult,
    /// Event log, when the producing request asked for a trace.
    pub trace: Option<Vec<TraceEvent>>,
    /// Phase-timer report, when the producing request asked for one.
    pub profile: Option<ProfileReport>,
}

/// Zeroes the wall-clock provenance — the only scheduling-dependent
/// bytes in a [`RunResult`] — so served, cached, and locally computed
/// results compare byte-for-byte.
pub fn canonical_result(mut result: RunResult) -> RunResult {
    result.manifest.wall_clock = PhaseTimings::default();
    result
}

/// Executes one cell with exactly the runner entry point the request's
/// flags select, canonicalizing the result.
pub fn compute_cell(
    scenario: &Scenario,
    protocol: ProtocolKind,
    seed: u64,
    trace: bool,
    profile: bool,
) -> ServeCell {
    match (trace, profile) {
        (false, false) => ServeCell {
            result: canonical_result(run_one(scenario, protocol, seed)),
            trace: None,
            profile: None,
        },
        (true, false) => {
            let (result, trace) = run_one_traced(scenario, protocol, seed);
            ServeCell {
                result: canonical_result(result),
                trace: Some(trace.events().to_vec()),
                profile: None,
            }
        }
        (false, true) => {
            let (result, report) = run_one_profiled(scenario, protocol, seed);
            ServeCell {
                result: canonical_result(result),
                trace: None,
                profile: Some(report),
            }
        }
        (true, true) => {
            let (result, report, trace) = run_one_profiled_traced(scenario, protocol, seed);
            ServeCell {
                result: canonical_result(result),
                trace: Some(trace.events().to_vec()),
                profile: Some(report),
            }
        }
    }
}

/// Renders the full response-line sequence for one served cell:
/// `Started`, the `Event` stream, the `Profile` report, and the
/// terminal `Result`. The server streams exactly these lines and the
/// client oracle recomputes exactly these lines, so byte-identity is by
/// construction.
pub fn run_response_lines(id: u64, cell: &ServeCell, cached: bool) -> Vec<String> {
    let mut lines = Vec::with_capacity(2 + cell.trace.as_ref().map_or(0, Vec::len));
    lines.push(encode(&Response::Started { id }));
    if let Some(events) = &cell.trace {
        for event in events {
            lines.push(encode(&Response::Event {
                id,
                event: event.clone(),
            }));
        }
    }
    if let Some(profile) = &cell.profile {
        lines.push(encode(&Response::Profile {
            id,
            profile: profile.clone(),
        }));
    }
    lines.push(encode(&Response::Result {
        id,
        cached,
        result: cell.result.clone(),
    }));
    lines
}

/// Serializes one response line.
pub fn encode(response: &Response) -> String {
    serde_json::to_string(response).expect("response serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            n_nodes: 10,
            sim_slots: 300,
            n_runs: 1,
            ..Scenario::default()
        }
    }

    #[test]
    fn requests_round_trip() {
        let req = Request::Run(RunRequest {
            id: 7,
            protocol: "bmmm".into(),
            scenario: tiny(),
            seed: 3,
            trace: true,
            profile: false,
        });
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(req, back);
        for req in [Request::Metrics, Request::Ping, Request::Shutdown] {
            let line = serde_json::to_string(&req).unwrap();
            assert_eq!(req, serde_json::from_str::<Request>(&line).unwrap());
        }
    }

    #[test]
    fn canonical_results_are_byte_stable_across_runs() {
        let s = tiny();
        let a = compute_cell(&s, ProtocolKind::Bmmm, 5, false, false);
        let b = compute_cell(&s, ProtocolKind::Bmmm, 5, false, false);
        assert_eq!(
            serde_json::to_string(&a.result).unwrap(),
            serde_json::to_string(&b.result).unwrap(),
            "wall-clock is zeroed, everything else is seed-determined"
        );
    }

    #[test]
    fn traced_cell_matches_run_one_traced() {
        let s = tiny();
        let cell = compute_cell(&s, ProtocolKind::Lamm, 9, true, false);
        let (result, trace) = rmm_workload::run_one_traced(&s, ProtocolKind::Lamm, 9);
        assert_eq!(cell.trace.as_deref().unwrap(), trace.events());
        assert_eq!(
            serde_json::to_string(&cell.result).unwrap(),
            serde_json::to_string(&canonical_result(result)).unwrap()
        );
    }

    #[test]
    fn response_lines_start_and_end_correctly() {
        let cell = compute_cell(&tiny(), ProtocolKind::Bmw, 1, true, false);
        let lines = run_response_lines(4, &cell, false);
        assert!(lines.first().unwrap().contains("\"Started\""));
        assert!(lines.last().unwrap().contains("\"Result\""));
        assert_eq!(lines.len(), 2 + cell.trace.as_ref().unwrap().len());
        // The cached replay differs only in the `cached` flag.
        let cached = run_response_lines(4, &cell, true);
        assert_eq!(lines.len(), cached.len());
        assert_eq!(lines[..lines.len() - 1], cached[..lines.len() - 1]);
        assert_ne!(lines.last(), cached.last());
    }
}
