//! End-to-end exercises of the serve daemon over real loopback TCP:
//! byte-identity against the serial oracle, cache warm/cold behaviour,
//! persistence across restarts, connection capping, error handling, a
//! concurrent soak, and graceful drain.

use rmm_serve::{
    fetch_metrics, local_lines, parse_metric, request_shutdown, soak, submit_one, Request,
    RunRequest, ServeConfig, Server, SoakSpec,
};
use rmm_workload::Scenario;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn tiny() -> Scenario {
    Scenario {
        n_nodes: 10,
        sim_slots: 400,
        n_runs: 1,
        ..Scenario::default()
    }
}

fn start(config: ServeConfig) -> (Server, String) {
    let server = Server::start(config).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn run_req(id: u64, protocol: &str, seed: u64, trace: bool) -> RunRequest {
    RunRequest {
        id,
        protocol: protocol.into(),
        scenario: tiny(),
        seed,
        trace,
        profile: false,
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rmm-serve-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn drain(server: Server, addr: &str) {
    // A connection slot can stay occupied for a moment after a client
    // drops its stream (the server-side reader has to observe the EOF),
    // so a capacity-limited server may refuse the first shutdown
    // attempt — retry until the Draining ack actually comes back.
    for _ in 0..500 {
        if request_shutdown(addr).is_ok() {
            server.join();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server never admitted the shutdown request");
}

#[test]
fn served_response_is_byte_identical_to_local_oracle() {
    let (server, addr) = start(ServeConfig::default());
    for (id, protocol, trace) in [(1, "bmmm", false), (2, "lamm", true), (3, "802.11", true)] {
        let req = run_req(id, protocol, 7, trace);
        let got = submit_one(&addr, &req).expect("served");
        let want = local_lines(&req).expect("oracle");
        assert_eq!(got, want, "served bytes must equal the serial oracle");
    }
    drain(server, &addr);
}

#[test]
fn second_request_is_served_from_cache_without_engine_work() {
    let (server, addr) = start(ServeConfig::default());
    let req = run_req(9, "bmw", 3, true);
    let cold = submit_one(&addr, &req).expect("cold");
    let runs_after_cold = parse_metric(
        &fetch_metrics(&addr).unwrap(),
        "rmm_serve_engine_runs_total",
    )
    .unwrap();
    let warm = submit_one(&addr, &req).expect("warm");
    let runs_after_warm = parse_metric(
        &fetch_metrics(&addr).unwrap(),
        "rmm_serve_engine_runs_total",
    )
    .unwrap();
    assert_eq!(
        runs_after_cold, runs_after_warm,
        "warm hit must not run the engine"
    );
    assert_eq!(cold.len(), warm.len());
    assert_eq!(cold[..cold.len() - 1], warm[..warm.len() - 1]);
    assert!(cold.last().unwrap().contains("\"cached\":false"));
    assert!(warm.last().unwrap().contains("\"cached\":true"));
    let hits = parse_metric(&fetch_metrics(&addr).unwrap(), "rmm_serve_cache_hits_total").unwrap();
    assert!(hits >= 1);
    drain(server, &addr);
}

#[test]
fn disk_cache_survives_server_restart() {
    let cache = tmp_dir("restart").join("cache.jsonl");
    let req = run_req(1, "leader", 11, false);
    let cold = {
        let (server, addr) = start(ServeConfig {
            cache_path: Some(cache.clone()),
            ..ServeConfig::default()
        });
        let lines = submit_one(&addr, &req).expect("cold");
        drain(server, &addr);
        lines
    };
    let (server, addr) = start(ServeConfig {
        cache_path: Some(cache),
        ..ServeConfig::default()
    });
    let warm = submit_one(&addr, &req).expect("warm from reloaded cache");
    let runs = parse_metric(
        &fetch_metrics(&addr).unwrap(),
        "rmm_serve_engine_runs_total",
    )
    .unwrap();
    assert_eq!(
        runs, 0,
        "restarted server must answer entirely from the reloaded cache"
    );
    assert!(warm.last().unwrap().contains("\"cached\":true"));
    assert_eq!(cold[..cold.len() - 1], warm[..warm.len() - 1]);
    drain(server, &addr);
}

#[test]
fn bad_lines_and_unknown_protocols_error_without_killing_the_connection() {
    let (server, addr) = start(ServeConfig::default());
    let mut stream = TcpStream::connect(&addr).unwrap();
    writeln!(stream, "this is not json").unwrap();
    writeln!(
        stream,
        "{}",
        serde_json::to_string(&Request::Run(run_req(5, "carrier-pigeon", 0, false))).unwrap()
    )
    .unwrap();
    writeln!(stream, "{}", serde_json::to_string(&Request::Ping).unwrap()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        lines.push(line);
    }
    assert!(lines[0].contains("\"Error\"") && lines[0].contains("unparseable"));
    assert!(lines[1].contains("\"Error\"") && lines[1].contains("carrier-pigeon"));
    assert!(
        lines[2].contains("\"Pong\""),
        "connection stays usable after errors"
    );
    drop(reader); // close our connection so the drain can complete
    drain(server, &addr);
}

#[test]
fn invalid_fault_plan_is_rejected_before_the_engine() {
    let (server, addr) = start(ServeConfig::default());
    let mut req = run_req(2, "bmmm", 0, false);
    req.scenario.faults =
        rmm_sim::FaultPlan::parse("crash:99@5").expect("parses; node 99 is out of range for n=10");
    let lines = submit_one(&addr, &req).expect("response");
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains("\"Error\"") && lines[0].contains("fault plan"));
    drain(server, &addr);
}

#[test]
fn connections_beyond_the_cap_are_refused() {
    let (server, addr) = start(ServeConfig {
        max_conns: 1,
        ..ServeConfig::default()
    });
    // First connection occupies the only slot until dropped.
    let held = TcpStream::connect(&addr).unwrap();
    let second = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(second);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"Error\"") && line.contains("capacity"));
    drop(held);
    // Capacity frees up once the held connection closes.
    let req = run_req(1, "bsma", 1, false);
    let retry = loop {
        match submit_one(&addr, &req) {
            Ok(lines) if lines.last().unwrap().contains("\"Result\"") => break lines,
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    assert_eq!(retry, local_lines(&req).unwrap());
    drain(server, &addr);
}

#[test]
fn http_get_scrapes_metrics() {
    let (server, addr) = start(ServeConfig::default());
    let mut stream = TcpStream::connect(&addr).unwrap();
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut body = String::new();
    BufReader::new(stream).read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.0 200 OK"));
    assert!(body.contains("rmm_serve_requests_total"));
    assert!(body.contains("rmm_serve_workers"));
    drain(server, &addr);
}

#[test]
fn concurrent_soak_is_byte_identical_then_fully_cached() {
    let cache = tmp_dir("soak").join("cache.jsonl");
    let (server, addr) = start(ServeConfig {
        cache_path: Some(cache),
        queue_cap: 16,
        ..ServeConfig::default()
    });
    let mut spec = SoakSpec {
        requests: 48,
        conns: 6,
        scenario: tiny(),
        seed_base: 1000,
        trace_every: 7,
        expect_cached: false,
    };
    let cold = soak(&addr, &spec).expect("cold soak byte-identical");
    assert_eq!(cold.requests, 48);
    // Second sweep: same cells, must be answered entirely from cache.
    spec.expect_cached = true;
    let warm = soak(&addr, &spec).expect("warm soak fully cached");
    assert_eq!(warm.cached, 48);
    assert_eq!(warm.engine_runs, 0);
    assert_eq!(warm.cache_hits, 48);
    drain(server, &addr);
}

#[test]
fn graceful_drain_refuses_new_work_but_finishes_the_ack() {
    let (server, addr) = start(ServeConfig::default());
    server.begin_shutdown();
    // New engine work on an already-open path is refused while draining.
    // The drain wake-up connection races with us; the listener may
    // accept us before observing the flag, in which case the Run is
    // refused, or refuse the connection outright.
    let mut stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(_) => {
            server.join();
            return;
        }
    };
    let _ = writeln!(
        stream,
        "{}",
        serde_json::to_string(&Request::Run(run_req(1, "bmmm", 0, false))).unwrap()
    );
    let _ = stream.flush();
    let mut line = String::new();
    let _ = BufReader::new(stream).read_line(&mut line);
    if !line.is_empty() {
        assert!(
            line.contains("draining") || line.contains("\"Error\""),
            "a run accepted mid-drain must be refused: {line}"
        );
    }
    server.join();
}
