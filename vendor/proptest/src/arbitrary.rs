//! `any::<T>()` — the full-range strategy for simple types.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.random()
            }
        }
    )*};
}
arbitrary_via_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}
