//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// The strategy type of [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// A fair coin.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn sample(&self, rng: &mut SmallRng) -> bool {
        rng.random()
    }
}
