//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with ranges / tuples /
//! [`strategy::Just`] / `prop_map` / [`prop_oneof!`], `any::<T>()`,
//! `prop::collection::vec`, `prop::bool::ANY`, and the `prop_assert*`
//! macros. Each test runs `ProptestConfig::cases` random cases from a
//! generator seeded deterministically from the test's name, so runs are
//! reproducible. Failing cases are reported with their case number but
//! are **not shrunk** (real proptest minimizes counterexamples).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __runner =
                $crate::test_runner::TestRunner::new(stringify!($name), __config);
            for __case in 0..__runner.cases() {
                $(let $arg =
                    $crate::strategy::Strategy::sample(&$strategy, __runner.rng());)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __runner.cases(),
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Strategy union: samples one of the listed strategies uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let __union = $crate::strategy::Union::new();
        $(let __union = __union.or($strategy);)+
        __union
    }};
}

/// Asserts inside a proptest body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr,) => {
        $crate::prop_assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr,) => {
        $crate::prop_assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), 10u32..20]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..6), c in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn oneof_and_map(x in small().prop_map(|v| v * 2), flag in prop::bool::ANY) {
            prop_assert!(x == 2 || x == 4 || (20..40).contains(&x));
            prop_assert_ne!(flag, !flag);
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!((3..6).contains(&xs.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRunner::new("name", ProptestConfig::default());
        let mut b = crate::test_runner::TestRunner::new("name", ProptestConfig::default());
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(Strategy::sample(&s, a.rng()), Strategy::sample(&s, b.rng()));
        }
    }
}
