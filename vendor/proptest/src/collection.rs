//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
