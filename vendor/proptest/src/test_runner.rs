//! The per-test case runner and its configuration.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// How many random cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Drives the cases of one property test with a generator seeded
/// deterministically from the test's name, so failures reproduce.
pub struct TestRunner {
    rng: SmallRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(name: &str, config: ProptestConfig) -> TestRunner {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(hash),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}
