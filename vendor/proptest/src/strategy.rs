//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// just draws a fresh value from the runner's deterministic generator.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates an empty union; sampling panics until `or` adds options.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Union<V> {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one option.
    pub fn or(mut self, strategy: impl Strategy<Value = V> + 'static) -> Union<V> {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut SmallRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
