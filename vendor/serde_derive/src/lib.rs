//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` crate's value-based
//! `Serialize`/`Deserialize` traits. Because the environment has no
//! `syn`/`quote`, the item is parsed by walking the raw `TokenStream`:
//! all the generator needs are the type name, field names, and variant
//! shapes — field *types* never have to be parsed, since the generated
//! code lets inference pick the right `Deserialize` impl.
//!
//! Supported shapes (everything this workspace derives): non-generic
//! named/tuple/unit structs and enums with unit, tuple, and struct
//! variants. Attributes (doc comments, `#[default]`, …) are skipped;
//! `#[serde(...)]` customization is not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

struct Input {
    name: String,
    data: Data,
}

enum Data {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

fn is_ident(tok: Option<&TokenTree>, word: &str) -> bool {
    matches!(tok, Some(TokenTree::Ident(id)) if id.to_string() == word)
}

fn is_punct(tok: Option<&TokenTree>, ch: char) -> bool {
    matches!(tok, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Skips `#[...]` attributes (doc comments arrive as these too).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while is_punct(toks.get(*i), '#') {
        *i += 2; // '#' then the bracketed group
    }
}

/// Skips `pub` / `pub(crate)` style visibility.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if is_ident(toks.get(*i), "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    loop {
        if is_ident(toks.get(i), "struct") {
            break;
        }
        if is_ident(toks.get(i), "enum") {
            is_enum = true;
            break;
        }
        assert!(i < toks.len(), "serde_derive: no struct/enum keyword found");
        if is_punct(toks.get(i), '#') {
            i += 2;
        } else {
            i += 1;
        }
    }
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    assert!(
        !is_punct(toks.get(i), '<'),
        "serde_derive: generic types are not supported by the vendored derive"
    );
    let data = if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
            other => panic!("serde_derive: expected struct body, got {other:?}"),
        }
    };
    Input { name, data }
}

/// Field names of a `{ a: T, b: U }` body, skipping attributes,
/// visibility, and the (never inspected) types.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type: everything until a comma outside angle brackets.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a `(T, U, ...)` body: comma-separated chunks outside angle
/// brackets.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0;
    let mut chunk_has_tokens = false;
    let mut depth = 0i32;
    for tok in ts {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if chunk_has_tokens {
                    count += 1;
                }
                chunk_has_tokens = false;
                continue;
            }
            _ => {}
        }
        chunk_has_tokens = true;
    }
    if chunk_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        assert!(
            !is_punct(toks.get(i), '='),
            "serde_derive: explicit discriminants are not supported"
        );
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        Data::Named(fields) => {
            body.push_str("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                writeln!(
                    body,
                    "__map.insert(\"{f}\", ::serde::Serialize::serialize_value(&self.{f}));"
                )
                .unwrap();
            }
            body.push_str("::serde::Value::Object(__map)");
        }
        Data::Tuple(1) => {
            body.push_str("::serde::Serialize::serialize_value(&self.0)");
        }
        Data::Tuple(n) => {
            body.push_str("::serde::Value::Array(vec![");
            for idx in 0..*n {
                write!(body, "::serde::Serialize::serialize_value(&self.{idx}),").unwrap();
            }
            body.push_str("])");
        }
        Data::Unit => body.push_str("::serde::Value::Null"),
        Data::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        writeln!(
                            body,
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                        )
                        .unwrap();
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(","))
                        };
                        writeln!(
                            body,
                            "{name}::{vname}({}) => {{\n\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(\"{vname}\", {payload});\n\
                             ::serde::Value::Object(__map)\n\
                             }}",
                            binds.join(",")
                        )
                        .unwrap();
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::new();
                        for f in fields {
                            writeln!(
                                inner,
                                "__inner.insert(\"{f}\", ::serde::Serialize::serialize_value({f}));"
                            )
                            .unwrap();
                        }
                        writeln!(
                            body,
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n\
                             {inner}\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(\"{vname}\", ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__map)\n\
                             }}",
                            fields.join(","),
                        )
                        .unwrap();
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Named(fields) => {
            let mut b = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                writeln!(b, "{f}: ::serde::__private::field(__obj, \"{f}\")?,").unwrap();
            }
            b.push_str("})");
            b
        }
        Data::Tuple(1) => {
            format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
            )
        }
        Data::Tuple(n) => {
            let mut b = format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::core::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}(",
            );
            for idx in 0..*n {
                write!(
                    b,
                    "::serde::Deserialize::deserialize_value(&__arr[{idx}])?,"
                )
                .unwrap();
            }
            b.push_str("))");
            b
        }
        Data::Unit => format!(
            "if __v.is_null() {{ ::core::result::Result::Ok({name}) }} else {{ \
             ::core::result::Result::Err(::serde::Error::custom(\"expected null for {name}\")) }}"
        ),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        writeln!(
                            unit_arms,
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),"
                        )
                        .unwrap();
                    }
                    VariantKind::Tuple(1) => {
                        writeln!(
                            data_arms,
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize_value(__inner)?)),"
                        )
                        .unwrap();
                    }
                    VariantKind::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array payload for {name}::{vname}\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::custom(\
                             \"wrong payload length for {name}::{vname}\"));\n\
                             }}\n\
                             ::core::result::Result::Ok({name}::{vname}(",
                        );
                        for idx in 0..*n {
                            write!(
                                arm,
                                "::serde::Deserialize::deserialize_value(&__arr[{idx}])?,"
                            )
                            .unwrap();
                        }
                        arm.push_str("))\n}\n");
                        data_arms.push_str(&arm);
                    }
                    VariantKind::Named(fields) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object payload for {name}::{vname}\"))?;\n\
                             ::core::result::Result::Ok({name}::{vname} {{\n",
                        );
                        for f in fields {
                            writeln!(arm, "{f}: ::serde::__private::field(__obj, \"{f}\")?,")
                                .unwrap();
                        }
                        arm.push_str("})\n}\n");
                        data_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) => {{\n\
                 let (__k, __inner) = ::serde::__private::single_entry(__m, \"{name}\")?;\n\
                 match __k {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected {name}, got {{}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
