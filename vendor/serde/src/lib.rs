//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a *value-based* replacement: instead of real serde's
//! `Serializer`/`Deserializer` visitor machinery, [`Serialize`] converts
//! a value into a JSON-shaped [`Value`] tree and [`Deserialize`] reads
//! one back. The derive macros (`serde_derive`, re-exported behind the
//! usual `derive` feature) generate impls of these traits with the same
//! JSON data mapping real serde uses:
//!
//! * named struct → object, fields in declaration order,
//! * newtype struct → the inner value,
//! * tuple struct → array,
//! * unit enum variant → `"VariantName"`,
//! * data-carrying variant → `{"VariantName": <payload>}`.
//!
//! The vendored `serde_json` crate supplies the text format on top of
//! this data model.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A (de)serialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a [`Value`] tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other}"))),
        }
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, Error> {
                let n = match v {
                    Value::Number(n) => n
                        .as_exact_u64()
                        .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v}")))?,
                    other => return Err(Error::custom(format!("expected integer, got {other}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, Error> {
                let n = match v {
                    Value::Number(n) => n
                        .as_exact_i64()
                        .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?,
                    other => return Err(Error::custom(format!("expected integer, got {other}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::custom(format!("expected number, got {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<f32, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

/// Support code used by the generated derive impls. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    /// Reads a struct field, treating a missing key as `null` (so
    /// `Option` fields default to `None`, as in real serde).
    pub fn field<T: Deserialize>(obj: &Map, name: &str) -> Result<T, Error> {
        match obj.get(name) {
            Some(v) => {
                T::deserialize_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => T::deserialize_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Extracts the single `{"Variant": payload}` entry of an
    /// externally-tagged enum object.
    pub fn single_entry<'a>(obj: &'a Map, ty: &str) -> Result<(&'a str, &'a Value), Error> {
        let mut it = obj.iter();
        match (it.next(), it.next()) {
            (Some((k, v)), None) => Ok((k.as_str(), v)),
            _ => Err(Error::custom(format!(
                "expected single-key variant object for {ty}"
            ))),
        }
    }
}
