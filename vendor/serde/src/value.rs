//! The JSON-shaped data model shared by the vendored `serde` and
//! `serde_json` crates.

use std::fmt;
use std::ops::Index;

/// A JSON number. Integers keep their exact representation so `u64`
/// seeds survive a round-trip; floats print with a trailing `.0` when
/// integral so they parse back as floats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Canonical constructor from `u64`.
    pub fn from_u64(n: u64) -> Number {
        Number::U(n)
    }

    /// Canonical constructor from `i64` (non-negative values normalize
    /// to [`Number::U`] so `1i64` and `1u64` compare equal).
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::U(n as u64)
        } else {
            Number::I(n)
        }
    }

    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(f) => f,
        }
    }

    /// The number as `u64` if it is exactly a non-negative integer
    /// (integral floats included, to survive float-format round-trips).
    pub fn as_exact_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= 2f64.powi(53) => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64` if it is exactly an integer.
    pub fn as_exact_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= 2f64.powi(53) => Some(f as i64),
            Number::F(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            Number::F(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no NaN/Inf; real serde_json writes null.
            Number::F(_) => f.write_str("null"),
        }
    }
}

/// An insertion-ordered string→value map (JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key, replacing (in place) any existing value for it.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the object has this key.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_exact_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_exact_i64(),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            compact => compact.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact JSON rendering (what `serde_json::to_string` produces).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::F(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a", Value::Bool(true));
        m.insert("b", Value::Null);
        assert_eq!(m.insert("a", Value::Bool(false)), Some(Value::Bool(true)));
        assert_eq!(m.len(), 2);
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }

    #[test]
    fn numbers_normalize_and_compare() {
        assert_eq!(Number::from_i64(3), Number::from_u64(3));
        assert_eq!(Number::from_i64(-2).as_exact_i64(), Some(-2));
        assert_eq!(Number::F(4.0).as_exact_u64(), Some(4));
        assert_eq!(Number::F(4.5).as_exact_u64(), None);
    }

    #[test]
    fn display_is_compact_json() {
        let mut obj = Map::new();
        obj.insert("x", Value::Number(Number::U(1)));
        obj.insert("y", Value::String("a\"b".into()));
        let v = Value::Array(vec![Value::Object(obj), Value::Null]);
        assert_eq!(v.to_string(), r#"[{"x":1,"y":"a\"b"},null]"#);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Value::Number(Number::F(1.0)).to_string(), "1.0");
        assert_eq!(Value::Number(Number::F(0.0005)).to_string(), "0.0005");
    }

    #[test]
    fn index_and_eq_sugar() {
        let mut obj = Map::new();
        obj.insert("protocol", Value::String("BMMM".into()));
        let v = Value::Object(obj);
        assert_eq!(v["protocol"], "BMMM");
        assert!(v["missing"].is_null());
    }
}
