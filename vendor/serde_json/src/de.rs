//! Recursive-descent JSON parser producing [`Value`] trees.

use serde::{Error, Map, Number, Value};

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are unsupported (the
                            // writers never emit them); reject cleanly.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Parse magnitude separately so i64::MIN still works.
            match stripped.parse::<i64>() {
                Ok(n) => Number::from_i64(-n),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::U(n),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::U(42)));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::I(-7)));
        assert_eq!(parse("2.5e-3").unwrap(), Value::Number(Number::F(0.0025)));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Value::String("a\nbA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{ "a": [1, {"b": null}], "c": "x" }"#).unwrap();
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"], "x");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }
}
