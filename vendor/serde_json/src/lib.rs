//! Offline vendored stand-in for `serde_json`.
//!
//! Text format on top of the vendored `serde` crate's [`Value`] data
//! model: a recursive-descent parser, compact and pretty writers, the
//! [`json!`] construction macro, and the usual `to_string`/`from_str`
//! entry points.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod de;

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_string())
}

/// Serializes to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().pretty())
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = de::parse(s)?;
    T::deserialize_value(&value)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax. Keys must be string
/// literals; values may be nested `{...}` objects, `[...]` arrays of
/// expressions, `null`, or any expression whose type is `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __object = $crate::Map::new();
        $crate::json_object_entries!(__object; $($entries)*);
        $crate::Value::Object(__object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::Value::Null);
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::json!([ $($inner)* ]));
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::to_value(&$value));
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects_nest() {
        let runs = 7usize;
        let v = json!({
            "protocol": "BMMM",
            "runs": runs,
            "delivery_rate": { "mean": 0.95, "ci95": 0.01 },
            "reliable": true,
            "extra": null,
        });
        assert_eq!(v["protocol"], "BMMM");
        assert_eq!(v["runs"].as_u64(), Some(7));
        assert_eq!(v["delivery_rate"]["mean"].as_f64(), Some(0.95));
        assert_eq!(v["reliable"].as_bool(), Some(true));
        assert!(v["extra"].is_null());
    }

    #[test]
    fn json_macro_handles_complex_expressions() {
        let xs = [1.0f64, 2.0, 3.0];
        let v = json!({
            "mean": xs.iter().sum::<f64>() / xs.len() as f64,
        });
        assert_eq!(v["mean"].as_f64(), Some(2.0));
    }

    #[test]
    fn value_roundtrip_through_text() {
        let v = json!({
            "a": [1, 2, 3],
            "b": { "c": "x\"y", "d": -4 },
            "e": 0.25,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn vec_of_values_serializes() {
        let rows: Vec<Value> = vec![json!({"p": 1}), json!({"p": 2})];
        let text = to_string_pretty(&rows).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back[1]["p"].as_u64(), Some(2));
    }
}
