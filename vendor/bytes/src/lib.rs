//! Offline vendored stand-in for the `bytes` crate.
//!
//! Provides the subset this workspace's wire codec uses: a growable
//! [`BytesMut`] write buffer implementing [`BufMut`], and a [`Buf`]
//! reader implementation for `&[u8]`. Backed by a plain `Vec<u8>` —
//! no shared-ownership machinery, which the codec never needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a buffer of bytes, advancing an internal cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// The bytes between the cursor and the end.
    fn chunk(&self) -> &[u8];

    /// Reads one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`. Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`. Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes into `dst`. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

/// A growable, uniquely-owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The written bytes as an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.inner.resize(self.inner.len() + cnt, val);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_slice(b"xyz");
        buf.put_bytes(0x7F, 3);
        assert_eq!(buf.len(), 1 + 2 + 4 + 3 + 3);

        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16_le(), 0x1234);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        let mut s = [0u8; 3];
        rd.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(rd.remaining(), 3);
        assert_eq!(rd, &[0x7F; 3]);
    }

    #[test]
    fn deref_exposes_written_bytes() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1, 2, 3]);
        let as_slice: &[u8] = &buf;
        assert_eq!(as_slice, &[1, 2, 3]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1u8];
        let mut dst = [0u8; 2];
        rd.copy_to_slice(&mut dst);
    }
}
