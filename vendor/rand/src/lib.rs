//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand` 0.9 API it actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm real
//!   `rand` 0.9 uses for `SmallRng` on 64-bit targets), seeded through
//!   SplitMix64 exactly like `SeedableRng::seed_from_u64` upstream,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`] for `f64`/`f32`/`bool`/ints,
//! * [`Rng::random_range`] over `Range`/`RangeInclusive` of the common
//!   integer types and `f64`.
//!
//! Draw-for-draw output will not necessarily match crates.io `rand`
//! (distribution plumbing differs), but every consumer in this workspace
//! only relies on determinism-per-seed and rough uniformity, both of
//! which hold.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion,
    /// matching upstream `rand`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: the seed-expansion PRNG recommended by the xoshiro
/// authors and used by upstream `rand` for `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing random-value API, implemented by every generator here.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; ints: uniform over the full
    /// range; `bool`: fair coin).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from their "standard" distribution via [`Rng::random`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform sample. Panics if the range is empty.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, span)` by Lemire-style widening multiply
/// (unbiased enough for simulation use; avoids the modulo hot spot).
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening multiply maps the 64-bit draw into [0, span).
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Draws one standard sample from a freshly seeded thread-local-free
/// generator. (Deterministic per process start; this workspace never
/// relies on it — provided for API parity.)
pub fn random<T: Standard>() -> T {
    use rngs::SmallRng;
    let mut rng = SmallRng::seed_from_u64(0x8af8_d2c7_13a9_b2d1);
    T::sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let x = r.random_range(0u32..=7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all draws occurred: {seen:?}");
        for _ in 0..1_000 {
            let x = r.random_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&x));
            let y = r.random_range(5usize..10);
            assert!((5..10).contains(&y));
        }
    }

    #[test]
    fn inclusive_single_point_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(r.random_range(4u32..=4), 4);
        }
    }
}
