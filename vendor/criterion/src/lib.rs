//! Offline vendored stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`,
//! and `Bencher::iter`. Each benchmark is warmed up, then timed for
//! `sample_size` samples whose iteration count is chosen so a sample
//! takes a few milliseconds; the minimum / median / maximum per-iteration
//! times are printed in criterion's `time: [lo mid hi]` style. There is
//! no statistical analysis, HTML report, or saved baseline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration workload size (printed, not analyzed).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("{}: throughput {throughput}", self.name);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration workload size annotations.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Throughput::Elements(n) => write!(f, "{n} elements/iter"),
            Throughput::Bytes(n) => write!(f, "{n} bytes/iter"),
        }
    }
}

/// Times the routine passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for this sample's iteration count and records the
    /// total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warmup doubles the iteration count until a sample is long enough
    // to time reliably (or one iteration already is).
    f(&mut bencher);
    while bencher.elapsed < TARGET_SAMPLE && bencher.iters < 1 << 30 {
        let scale = if bencher.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE.as_nanos() / bencher.elapsed.as_nanos().max(1) + 1) as u64
        };
        bencher.iters = bencher.iters.saturating_mul(scale.clamp(2, 16));
        f(&mut bencher);
    }
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let lo = samples[0];
    let mid = samples[samples.len() / 2];
    let hi = samples[samples.len() - 1];
    println!(
        "{id:<40} time:   [{} {} {}]",
        format_ns(lo),
        format_ns(mid),
        format_ns(hi)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut counter = 0u64;
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u8, |b, _| {
            b.iter(|| black_box(0))
        });
        g.finish();
    }
}
