//! Reliability invariants, checked against the simulator's ground truth.
//!
//! The central one validates the paper's Theorems 1 and 3 end-to-end:
//! whenever LAMM closes a receiver *without* an explicit ACK (geometric
//! coverage by the ACK set), that receiver really did decode the data
//! frame — under the paper's assumption that transmission errors come
//! from collisions, which is exactly our channel model.

use rmm::mac::{MacNode, Outcome, ProtocolKind};
use rmm::prelude::*;
use rmm::workload::Scenario;

fn scenario(seed_rate: f64) -> Scenario {
    Scenario {
        n_nodes: 70,
        sim_slots: 5_000,
        msg_rate: seed_rate,
        n_runs: 1,
        ..Scenario::default()
    }
}

/// Replays a run and returns `(nodes, records)` for invariant checks —
/// unlike `run_one`, we keep the nodes so receiver ground truth stays
/// inspectable.
fn replay(protocol: ProtocolKind, seed: u64) -> Vec<MacNode> {
    let s = scenario(1e-3);
    let topo = rmm::workload::uniform_square(s.n_nodes, s.radius, seed);
    let mut nodes = MacNode::build_network(&topo, protocol, s.timing, seed);
    let mut engine = Engine::new(topo.clone(), s.capture, seed.wrapping_add(0x5eed));
    let mut traffic = rmm::workload::TrafficGen::new(s.msg_rate, s.mix, seed);
    let mut arrivals = Vec::new();
    for t in 0..s.sim_slots {
        traffic.tick(engine.topology(), t, &mut arrivals);
        for a in &arrivals {
            nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
        }
        engine.step(&mut nodes);
    }
    for n in &mut nodes {
        n.drain_unfinished(s.sim_slots);
    }
    nodes
}

#[test]
fn completed_reliable_multicasts_delivered_to_every_intended_receiver() {
    // BMW and BMMM complete only after an explicit ACK (or have-CTS) from
    // every intended receiver, so completion ⇒ full delivery.
    for protocol in [ProtocolKind::Bmw, ProtocolKind::Bmmm] {
        for seed in 0..4 {
            let nodes = replay(protocol, seed);
            let mut checked = 0;
            for node in &nodes {
                for rec in node.records() {
                    if !rec.is_group() || !matches!(rec.outcome, Outcome::Completed(_)) {
                        continue;
                    }
                    for r in &rec.intended {
                        assert!(
                            nodes[r.index()].received().contains(&rec.msg),
                            "{protocol:?} seed {seed}: {} completed but {r} missing data",
                            rec.msg
                        );
                    }
                    checked += 1;
                }
            }
            assert!(
                checked > 5,
                "{protocol:?} seed {seed}: only {checked} completions checked"
            );
        }
    }
}

#[test]
fn lamm_theorem3_coverage_implies_delivery() {
    // The paper's Theorem 3, validated in the wild: every receiver LAMM
    // closed by geometric coverage actually decoded the data frame.
    let mut covered_total = 0;
    for seed in 0..6 {
        let nodes = replay(ProtocolKind::Lamm, seed);
        for node in &nodes {
            for rec in node.records() {
                if !matches!(rec.outcome, Outcome::Completed(_)) {
                    continue;
                }
                for r in &rec.assumed_covered {
                    assert!(
                        nodes[r.index()].received().contains(&rec.msg),
                        "seed {seed}: Theorem 3 violated — {r} assumed covered for {} but \
                         never decoded it",
                        rec.msg
                    );
                    covered_total += 1;
                }
            }
        }
    }
    assert!(
        covered_total > 20,
        "only {covered_total} coverage closures exercised — test too weak"
    );
}

#[test]
fn acked_receivers_really_received() {
    // An ACK (or BMW have-CTS) can only exist if the receiver holds the
    // data — across every protocol and outcome.
    for protocol in [ProtocolKind::Bmw, ProtocolKind::Bmmm, ProtocolKind::Lamm] {
        let nodes = replay(protocol, 3);
        for node in &nodes {
            for rec in node.records() {
                for r in &rec.acked {
                    assert!(
                        rec.intended.contains(r),
                        "{protocol:?}: ack from non-intended {r}"
                    );
                    assert!(
                        nodes[r.index()].received().contains(&rec.msg),
                        "{protocol:?}: {r} acked {} without the data",
                        rec.msg
                    );
                }
            }
        }
    }
}

#[test]
fn assumed_covered_is_lamm_only_and_disjoint_from_acked() {
    for protocol in [ProtocolKind::Bmw, ProtocolKind::Bmmm, ProtocolKind::Bsma] {
        let nodes = replay(protocol, 1);
        for node in &nodes {
            for rec in node.records() {
                assert!(
                    rec.assumed_covered.is_empty(),
                    "{protocol:?} produced assumed_covered entries"
                );
            }
        }
    }
    let nodes = replay(ProtocolKind::Lamm, 1);
    for node in &nodes {
        for rec in node.records() {
            for r in &rec.assumed_covered {
                assert!(!rec.acked.contains(r), "covered node {r} also acked");
                assert!(rec.intended.contains(r));
            }
        }
    }
}

#[test]
fn every_request_is_accounted_for() {
    // Conservation: queue in = records out; nothing is silently dropped.
    let s = scenario(2e-3);
    let topo = rmm::workload::uniform_square(s.n_nodes, s.radius, 9);
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, s.timing, 9);
    let mut engine = Engine::new(topo.clone(), s.capture, 9);
    let mut traffic = rmm::workload::TrafficGen::new(s.msg_rate, s.mix, 9);
    let mut arrivals = Vec::new();
    let mut enqueued = vec![0usize; s.n_nodes];
    for t in 0..s.sim_slots {
        traffic.tick(engine.topology(), t, &mut arrivals);
        for a in &arrivals {
            nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
            enqueued[a.node.index()] += 1;
        }
        engine.step(&mut nodes);
    }
    for n in &mut nodes {
        n.drain_unfinished(s.sim_slots);
    }
    for (i, node) in nodes.iter().enumerate() {
        assert_eq!(
            node.records().len(),
            enqueued[i],
            "node {i}: {} enqueued but {} recorded",
            enqueued[i],
            node.records().len()
        );
        // Message ids are unique and sequential per sender.
        let mut seqs: Vec<u32> = node.records().iter().map(|r| r.msg.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), node.records().len());
    }
}

#[test]
fn half_duplex_is_never_violated() {
    // A node's own transmissions never overlap: tx accounting is kept by
    // the engine's debug assertions, but double-check with the trace.
    let topo = rmm::workload::uniform_square(40, 0.2, 5);
    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Lamm, Default::default(), 5);
    let mut engine = Engine::new(topo.clone(), Capture::ZorziRao, 5);
    engine.enable_trace();
    let mut traffic = rmm::workload::TrafficGen::new(2e-3, Default::default(), 5);
    let mut arrivals = Vec::new();
    for t in 0..3_000 {
        traffic.tick(engine.topology(), t, &mut arrivals);
        for a in &arrivals {
            nodes[a.node.index()].enqueue(a.kind, a.receivers.clone(), t);
        }
        engine.step(&mut nodes);
    }
    let mut busy_until = vec![0u64; topo.len()];
    for ev in engine.trace().unwrap().events() {
        if let rmm::sim::TraceEvent::TxStart {
            slot, node, slots, ..
        } = ev
        {
            assert!(
                *slot >= busy_until[node.index()],
                "{node} started a tx at {slot} while busy until {}",
                busy_until[node.index()]
            );
            busy_until[node.index()] = slot + u64::from(*slots);
        }
    }
}
