//! Analysis-vs-simulation agreement (the paper: "the lines of the
//! expected number of contention phases in Figure 5 coincide with the
//! lines of the average number of contention phases in Figure 9(a) very
//! well"). We check the closed forms of Section 6 against controlled
//! single-cell simulations.

use rmm::analysis::{
    bmmm_expected_total_phases, bmw_expected_total_phases, bsma_phases_before_data,
};
use rmm::mac::{MacNode, Outcome, ProtocolKind};
use rmm::prelude::*;

fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

/// One clean-channel multicast; returns the contention phases used. The
/// service timeout is raised and the retry budgets disabled so the
/// protocol always runs to completion (the closed forms model unbounded
/// geometric retrying).
fn phases_one(protocol: ProtocolKind, n: usize, seed: u64) -> f64 {
    let timing = rmm::mac::MacTiming {
        timeout: 5_000,
        retry_limit: u32::MAX,
        dest_retry_limit: u32::MAX,
        ..Default::default()
    };
    let topo = star(n);
    let mut nodes = MacNode::build_network(&topo, protocol, timing, seed);
    let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
    let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
    engine.run(&mut nodes, 6_000);
    let rec = &nodes[0].records()[0];
    assert!(
        matches!(rec.outcome, Outcome::Completed(_)),
        "{protocol:?} n={n} seed={seed}: {:?}",
        rec.outcome
    );
    f64::from(rec.contention_phases)
}

fn mean_phases(protocol: ProtocolKind, n: usize, seeds: u64) -> f64 {
    (0..seeds).map(|s| phases_one(protocol, n, s)).sum::<f64>() / seeds as f64
}

#[test]
fn bmmm_clean_channel_uses_exactly_one_phase() {
    // p = 1 on a clean channel: f_n = 1 for every n.
    for n in [1usize, 3, 6] {
        assert_eq!(mean_phases(ProtocolKind::Bmmm, n, 5), 1.0, "n={n}");
        assert_eq!(bmmm_expected_total_phases(n, 1.0), 1.0);
    }
}

#[test]
fn bmw_clean_channel_uses_n_phases() {
    // p = 1: BMW's n/p = n.
    for n in [1usize, 3, 6] {
        assert_eq!(mean_phases(ProtocolKind::Bmw, n, 5), n as f64, "n={n}");
        assert_eq!(bmw_expected_total_phases(n, 1.0), n as f64);
    }
}

#[test]
fn bsma_phases_match_capture_analysis() {
    // Single cell, q = 0 (receivers never miss the RTS): all n CTS
    // replies collide every round, so the expected number of contention
    // phases before data is 1 / C_n — the Section 6 formula.
    for (n, tolerance) in [(2usize, 0.25), (3, 0.4)] {
        let expect = bsma_phases_before_data(0.0, n);
        let seeds = 300;
        let measured = mean_phases(ProtocolKind::Bsma, n, seeds);
        assert!(
            (measured - expect).abs() < tolerance,
            "n={n}: measured {measured:.3}, analysis {expect:.3}"
        );
    }
}

#[test]
fn tang_gerla_matches_bsma_analysis_too() {
    // Same CTS pile-up structure as BSMA (the NAK window never fires on
    // a clean channel), so the same 1/C_n law applies.
    let expect = bsma_phases_before_data(0.0, 2);
    let measured = mean_phases(ProtocolKind::TangGerla, 2, 300);
    assert!(
        (measured - expect).abs() < 0.25,
        "measured {measured:.3}, analysis {expect:.3}"
    );
}

#[test]
fn lamm_never_uses_more_phases_than_bmmm_in_simulation() {
    // LAMM polls fewer receivers but retries like BMMM; on a clean
    // channel both take exactly one phase.
    for n in [2usize, 5] {
        let lamm = mean_phases(ProtocolKind::Lamm, n, 5);
        let bmmm = mean_phases(ProtocolKind::Bmmm, n, 5);
        assert!(lamm <= bmmm, "n={n}: LAMM {lamm} > BMMM {bmmm}");
    }
}

#[test]
fn analysis_orderings_hold_in_full_simulation() {
    // The Section 6 ordering (BMW ≫ BSMA ≥ BMMM on contention phases)
    // must survive contact with the full Table 2 workload.
    let scenario = Scenario {
        n_nodes: 60,
        sim_slots: 4_000,
        n_runs: 3,
        ..Scenario::default()
    };
    let get = |p: ProtocolKind| {
        rmm::workload::mean_group_metrics(&run_many(&scenario, p)).avg_contention_phases
    };
    let bmw = get(ProtocolKind::Bmw);
    let bsma = get(ProtocolKind::Bsma);
    let bmmm = get(ProtocolKind::Bmmm);
    assert!(bmw > bsma, "BMW {bmw} !> BSMA {bsma}");
    assert!(bsma + 0.1 >= bmmm, "BSMA {bsma} !>= BMMM {bmmm}");
}

#[test]
fn airtime_model_matches_clean_channel_completion() {
    // The Airtime closed forms must predict the simulator's clean-channel
    // completion times once the actual backoff draw is accounted for:
    // completion = access_slot + batch airtime (BMMM), and the batch
    // airtime itself is deterministic.
    use rmm::analysis::Airtime;
    let a = Airtime::default();
    for n in [1usize, 2, 4, 6] {
        // Average over seeds: the random part is only the access delay.
        let seeds = 40;
        let mut total = 0.0;
        for seed in 0..seeds {
            total += completion_one(ProtocolKind::Bmmm, n, seed);
        }
        let measured = total / f64::from(seeds);
        let predicted = a.bmmm_completion(n);
        assert!(
            (measured - predicted).abs() < 1.0,
            "BMMM n={n}: measured {measured:.2}, predicted {predicted:.2}"
        );
    }
    for n in [1usize, 3, 5] {
        let seeds = 40;
        let mut total = 0.0;
        for seed in 0..seeds {
            total += completion_one(ProtocolKind::Bmw, n, seed);
        }
        let measured = total / f64::from(seeds);
        let predicted = a.bmw_completion(n);
        assert!(
            (measured - predicted).abs() < 2.0,
            "BMW n={n}: measured {measured:.2}, predicted {predicted:.2}"
        );
    }

    fn completion_one(protocol: ProtocolKind, n: usize, seed: u32) -> f64 {
        let timing = rmm::mac::MacTiming {
            timeout: 5_000,
            ..Default::default()
        };
        let topo = star(n);
        let mut nodes = MacNode::build_network(&topo, protocol, timing, u64::from(seed));
        let mut engine = Engine::new(topo, Capture::ZorziRao, u64::from(seed));
        let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
        nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
        engine.run(&mut nodes, 6_000);
        match nodes[0].records()[0].outcome {
            Outcome::Completed(at) => at as f64,
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn frame_budget_matches_simulated_frame_counts() {
    // The Section 5 overhead model: on a clean channel the per-message
    // frame counts equal the closed-form budgets exactly.
    use rmm::analysis::{Airtime, FrameBudgetProtocol};
    let a = Airtime::default();
    let cases = [
        (ProtocolKind::Ieee80211, FrameBudgetProtocol::Ieee80211),
        (ProtocolKind::TangGerla, FrameBudgetProtocol::TangGerla),
        (ProtocolKind::Bmw, FrameBudgetProtocol::Bmw),
        (ProtocolKind::Bmmm, FrameBudgetProtocol::Bmmm),
    ];
    let n = 3;
    for (protocol, budget) in cases {
        // Seed chosen so Tang–Gerla's CTS pile-up captures on the first
        // attempt (otherwise retries add frames, which is loss-dependent
        // behaviour rather than structure).
        let seed = 42;
        let timing = rmm::mac::MacTiming {
            timeout: 5_000,
            ..Default::default()
        };
        let topo = star(n);
        let mut nodes = MacNode::build_network(&topo, protocol, timing, seed);
        let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
        let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
        nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
        engine.run(&mut nodes, 6_000);
        if !nodes[0].records()[0].outcome.is_completed() {
            continue; // capture failed every attempt — skip, not structural
        }
        let (want_control, want_data) = a.frame_budget(budget, n);
        let mut got = rmm::mac::FrameKindCounts::default();
        for node in &nodes {
            got.add(&node.counters().sent_by_kind);
        }
        if protocol == ProtocolKind::TangGerla && got.rts > 1 {
            continue; // needed a retry; frame budget assumes first-try
        }
        assert_eq!(got.data, want_data, "{protocol:?} data frames");
        assert_eq!(
            got.control_total(),
            want_control,
            "{protocol:?} control frames: {got:?}"
        );
    }
}
