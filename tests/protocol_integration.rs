//! Full-stack integration: the paper's qualitative results must hold on
//! the real simulator with the Table 2 workload (scaled down for CI).

use rmm::prelude::*;
use rmm::workload::mean_group_metrics;

fn scenario() -> Scenario {
    Scenario {
        n_nodes: 60,
        sim_slots: 5_000,
        n_runs: 4,
        ..Scenario::default()
    }
}

fn metrics(protocol: ProtocolKind) -> RunMetrics {
    mean_group_metrics(&run_many(&scenario(), protocol))
}

#[test]
fn delivery_rate_ranking_matches_paper() {
    // Figure 6: LAMM ≥ BMMM >> BSMA, BMW.
    let lamm = metrics(ProtocolKind::Lamm);
    let bmmm = metrics(ProtocolKind::Bmmm);
    let bsma = metrics(ProtocolKind::Bsma);
    let bmw = metrics(ProtocolKind::Bmw);
    assert!(
        lamm.delivery_rate >= bmmm.delivery_rate - 0.02,
        "LAMM {} < BMMM {}",
        lamm.delivery_rate,
        bmmm.delivery_rate
    );
    assert!(
        bmmm.delivery_rate > bsma.delivery_rate + 0.05,
        "BMMM {} !>> BSMA {}",
        bmmm.delivery_rate,
        bsma.delivery_rate
    );
    assert!(
        bmmm.delivery_rate > bmw.delivery_rate + 0.05,
        "BMMM {} !>> BMW {}",
        bmmm.delivery_rate,
        bmw.delivery_rate
    );
}

#[test]
fn contention_phase_ranking_matches_paper() {
    // Figure 9: BMW needs by far the most contention phases; BMMM/LAMM
    // need no more than BSMA.
    let lamm = metrics(ProtocolKind::Lamm);
    let bmmm = metrics(ProtocolKind::Bmmm);
    let bsma = metrics(ProtocolKind::Bsma);
    let bmw = metrics(ProtocolKind::Bmw);
    assert!(bmw.avg_contention_phases > 2.0 * bmmm.avg_contention_phases);
    assert!(bmw.avg_contention_phases > bsma.avg_contention_phases);
    assert!(bmmm.avg_contention_phases <= bsma.avg_contention_phases + 0.1);
    assert!(lamm.avg_contention_phases <= bsma.avg_contention_phases + 0.1);
}

#[test]
fn completion_time_ranking_matches_paper() {
    // Figure 10: LAMM completes faster than BMMM, which beats BMW.
    let lamm = metrics(ProtocolKind::Lamm);
    let bmmm = metrics(ProtocolKind::Bmmm);
    let bmw = metrics(ProtocolKind::Bmw);
    assert!(
        lamm.avg_completion_time <= bmmm.avg_completion_time + 1.0,
        "LAMM {} > BMMM {}",
        lamm.avg_completion_time,
        bmmm.avg_completion_time
    );
    assert!(
        bmmm.avg_completion_time < bmw.avg_completion_time,
        "BMMM {} !< BMW {}",
        bmmm.avg_completion_time,
        bmw.avg_completion_time
    );
}

#[test]
fn longer_timeout_improves_delivery() {
    // Figure 7's monotone trend.
    let short = mean_group_metrics(&run_many(&scenario().with_timeout(100), ProtocolKind::Bmmm));
    let long = mean_group_metrics(&run_many(&scenario().with_timeout(300), ProtocolKind::Bmmm));
    assert!(
        long.delivery_rate > short.delivery_rate,
        "300-slot timeout {} !> 100-slot {}",
        long.delivery_rate,
        short.delivery_rate
    );
}

#[test]
fn higher_threshold_reduces_delivery_rate_for_unreliable_protocols() {
    // Figure 8: BSMA's apparent delivery rate decays as the bar rises;
    // the scoring is monotone in the threshold for every protocol.
    let results = run_many(&scenario(), ProtocolKind::Bsma);
    let msgs: Vec<MessageMetric> = results
        .iter()
        .flat_map(|r| r.messages.iter().filter(|m| m.is_group).cloned())
        .collect();
    let mut prev = f64::INFINITY;
    for t in [0.5, 0.7, 0.9, 1.0] {
        let rate = RunMetrics::compute(&msgs, t).delivery_rate;
        assert!(rate <= prev + 1e-12, "threshold {t}: {rate} > {prev}");
        prev = rate;
    }
    // And the drop from 0.5 to 1.0 is real for BSMA (it completes while
    // receivers are missing the data).
    let lo = RunMetrics::compute(&msgs, 0.5).delivery_rate;
    let hi = RunMetrics::compute(&msgs, 1.0).delivery_rate;
    assert!(
        lo > hi,
        "BSMA should lose apparent reliability at threshold 1.0"
    );
}

#[test]
fn heavier_load_degrades_every_protocol() {
    // Figures 6b/9b: more traffic, more collisions, lower delivery.
    for protocol in [ProtocolKind::Bmmm, ProtocolKind::Bsma] {
        let light = mean_group_metrics(&run_many(&scenario().with_rate(2e-4), protocol));
        let heavy = mean_group_metrics(&run_many(&scenario().with_rate(2e-3), protocol));
        assert!(
            heavy.delivery_rate < light.delivery_rate,
            "{protocol:?}: heavy {} !< light {}",
            heavy.delivery_rate,
            light.delivery_rate
        );
    }
}

#[test]
fn unicast_metrics_are_protocol_independent_in_shape() {
    // The unicast share always rides DCF; its delivery rate should be
    // high and similar across protocol choices.
    let a = mean_group_metrics(&run_many(&scenario(), ProtocolKind::Bmmm));
    let _ = a; // group metrics sanity below uses unicast slice directly
    for protocol in [ProtocolKind::Ieee80211, ProtocolKind::Bmmm] {
        let results = run_many(&scenario(), protocol);
        for r in &results {
            assert!(
                r.unicast_metrics.delivery_rate > 0.7,
                "{protocol:?} seed {}: unicast delivery {}",
                r.seed,
                r.unicast_metrics.delivery_rate
            );
        }
    }
}

#[test]
fn run_results_are_internally_consistent() {
    let results = run_many(&scenario(), ProtocolKind::Lamm);
    for r in &results {
        assert!((0.0..=1.0).contains(&r.group_metrics.delivery_rate));
        assert!((0.0..=1.0).contains(&r.group_metrics.avg_delivered_frac));
        assert!(r.group_metrics.avg_contention_phases >= 0.99);
        for m in &r.messages {
            assert!(m.delivered <= m.intended);
            if let Some(ct) = m.completion_time {
                assert!(ct <= 100, "completion {ct} beyond the timeout");
                assert!(m.completed);
            }
            assert!(!(m.completed && m.timed_out));
        }
    }
}
