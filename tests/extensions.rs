//! Extension features beyond the paper's headline experiments: frame
//! errors, GPS position noise, and node mobility with stale beacons.
//! These exercise the assumptions the paper states but does not vary —
//! "the primary transmission error is caused by collision" (Theorem 3)
//! and beacon-learned neighbor tables (Section 2).

use rmm::analysis::bmmm_expected_total_phases;
use rmm::mac::{MacNode, MacTiming, Outcome, ProtocolKind};
use rmm::prelude::*;
use rmm::workload::{run_mobile, run_one, MobilityConfig, TrafficGen};

fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

/// Mean contention phases of one clean-cell BMMM multicast under frame
/// errors.
fn bmmm_phases_with_fer(n: usize, fer: f64, seeds: u64) -> f64 {
    let timing = MacTiming {
        timeout: 5_000,
        ..Default::default()
    };
    let mut total = 0.0;
    for seed in 0..seeds {
        let topo = star(n);
        let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, timing, seed);
        let mut engine = Engine::new(topo, Capture::ZorziRao, seed);
        engine.set_fer(fer);
        let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
        nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
        engine.run(&mut nodes, 6_000);
        let rec = &nodes[0].records()[0];
        assert!(
            matches!(rec.outcome, Outcome::Completed(_)),
            "seed {seed}: {:?}",
            rec.outcome
        );
        total += f64::from(rec.contention_phases);
    }
    total / seeds as f64
}

#[test]
fn frame_errors_inflate_bmmm_phases_like_the_f_n_model() {
    // Per batch round a receiver is served iff its DATA, RAK and ACK all
    // survive: p = (1−fer)³. The measured phase count should track the
    // paper's f_n recursion at that p (the no-CTS retry path adds a small
    // overhead on top).
    let n = 4;
    let fer = 0.1;
    let p = (1.0 - fer_f(fer)).powi(3);
    let predicted = bmmm_expected_total_phases(n, p);
    let measured = bmmm_phases_with_fer(n, fer, 120);
    assert!(
        measured > predicted * 0.85 && measured < predicted * 1.45,
        "measured {measured:.3}, f_{n}({p:.3}) = {predicted:.3}"
    );

    fn fer_f(f: f64) -> f64 {
        f
    }
}

#[test]
fn phases_grow_monotonically_with_frame_error_rate() {
    let a = bmmm_phases_with_fer(3, 0.0, 40);
    let b = bmmm_phases_with_fer(3, 0.1, 40);
    let c = bmmm_phases_with_fer(3, 0.25, 40);
    assert!(a <= b && b < c, "{a} / {b} / {c}");
    assert_eq!(a, 1.0, "clean channel is exactly one phase");
}

#[test]
fn bmw_and_bmmm_stay_reliable_under_frame_errors() {
    // ACKs only exist if the data was decoded, so completion still
    // implies delivery even on a lossy channel.
    let scenario = Scenario {
        n_nodes: 50,
        sim_slots: 4_000,
        n_runs: 1,
        fer: 0.1,
        ..Scenario::default()
    };
    for protocol in [ProtocolKind::Bmw, ProtocolKind::Bmmm] {
        let r = run_one(&scenario, protocol, 3);
        for m in r.messages.iter().filter(|m| m.is_group && m.completed) {
            assert_eq!(
                m.delivered, m.intended,
                "{protocol:?}: completed message under-delivered"
            );
        }
    }
}

#[test]
fn frame_errors_break_lamm_coverage_assumption() {
    // Theorem 3 presumes collisions are the only loss mechanism. With
    // random frame errors a covered receiver can lose the data frame
    // even though the cover set decoded it — LAMM's guarantee hollows
    // out. Measure it directly: completed LAMM multicasts that missed a
    // receiver exist at fer = 0.2 and not at fer = 0.
    let base = Scenario {
        n_nodes: 60,
        sim_slots: 5_000,
        n_runs: 1,
        ..Scenario::default()
    };
    let violations = |fer: f64| -> usize {
        let mut total = 0;
        for seed in 0..4 {
            let s = Scenario {
                fer,
                ..base.clone()
            };
            let r = run_one(&s, ProtocolKind::Lamm, seed);
            total += r
                .messages
                .iter()
                .filter(|m| m.is_group && m.completed && m.delivered < m.intended)
                .count();
        }
        total
    };
    assert_eq!(
        violations(0.0),
        0,
        "collision-only channel must satisfy Theorem 3"
    );
    assert!(
        violations(0.2) > 0,
        "lossy channel should produce under-delivered completions for LAMM"
    );
}

#[test]
fn position_noise_degrades_lamm_gracefully() {
    let base = Scenario {
        n_nodes: 60,
        sim_slots: 4_000,
        n_runs: 3,
        ..Scenario::default()
    };
    let clean =
        rmm::workload::mean_group_metrics(&rmm::workload::run_many(&base, ProtocolKind::Lamm));
    let noisy_scenario = base.with_position_noise(0.05); // σ = R/4
    let noisy = rmm::workload::mean_group_metrics(&rmm::workload::run_many(
        &noisy_scenario,
        ProtocolKind::Lamm,
    ));
    // Noise must not *help*, and the protocol must keep functioning.
    assert!(noisy.delivery_rate <= clean.delivery_rate + 0.05);
    assert!(
        noisy.delivery_rate > 0.3,
        "noisy LAMM collapsed: {}",
        noisy.delivery_rate
    );
}

#[test]
fn zero_speed_mobility_matches_the_static_runner() {
    let s = Scenario {
        n_nodes: 50,
        sim_slots: 3_000,
        n_runs: 1,
        ..Scenario::default()
    };
    let mobility = MobilityConfig {
        speed_min: 0.0,
        speed_max: 0.0,
        ..Default::default()
    };
    let static_run = run_one(&s, ProtocolKind::Bmmm, 11);
    let mobile_run = run_mobile(&s, ProtocolKind::Bmmm, mobility, 11);
    assert_eq!(static_run.messages.len(), mobile_run.messages.len());
    assert_eq!(
        static_run.group_metrics.delivery_rate,
        mobile_run.group_metrics.delivery_rate
    );
    assert_eq!(static_run.collisions, mobile_run.collisions);
}

#[test]
fn fast_motion_with_stale_beacons_hurts_delivery() {
    let s = Scenario {
        n_nodes: 60,
        sim_slots: 6_000,
        n_runs: 1,
        ..Scenario::default()
    };
    let slow = MobilityConfig {
        speed_min: 0.0,
        speed_max: 0.0,
        update_period: 100,
        beacon_period: 1_000,
    };
    let fast = MobilityConfig {
        speed_min: 2e-4,
        speed_max: 5e-4, // extreme: ~R per 500 slots
        update_period: 100,
        beacon_period: 1_000,
    };
    let mut slow_rate = 0.0;
    let mut fast_rate = 0.0;
    for seed in 0..3 {
        slow_rate += run_mobile(&s, ProtocolKind::Bmmm, slow, seed)
            .group_metrics
            .delivery_rate;
        fast_rate += run_mobile(&s, ProtocolKind::Bmmm, fast, seed)
            .group_metrics
            .delivery_rate;
    }
    assert!(
        fast_rate < slow_rate,
        "stale neighbor tables should hurt: fast {fast_rate} vs static {slow_rate}"
    );
}

#[test]
fn beacon_refresh_updates_traffic_targets() {
    // After a beacon refresh, newly generated requests address current
    // neighbors — TrafficGen reads the beacon topology.
    let topo_a = star(3);
    let mut gen = TrafficGen::new(0.05, Default::default(), 1);
    let mut out = Vec::new();
    let mut seen_from_center = false;
    for t in 0..1_000 {
        gen.tick(&topo_a, t, &mut out);
        for a in &out {
            if a.node == NodeId(0) {
                seen_from_center = true;
                for r in &a.receivers {
                    assert!(topo_a.neighbors(a.node).contains(r));
                }
            }
        }
    }
    assert!(seen_from_center);
}

/// Large-scale soak: 300 stations, 20k slots, heavier traffic. Run with
/// `cargo test --release -- --ignored` — kept out of the default suite
/// for time, but it pins down scalability and long-run stability.
#[test]
#[ignore = "multi-minute soak test; run with --ignored"]
fn large_network_soak() {
    let s = Scenario {
        n_nodes: 300,
        sim_slots: 20_000,
        msg_rate: 5e-4,
        n_runs: 1,
        ..Scenario::default()
    };
    for protocol in [ProtocolKind::Bmmm, ProtocolKind::Lamm] {
        let r = run_one(&s, protocol, 1);
        assert!(
            r.group_metrics.messages > 500,
            "{protocol:?}: too few messages"
        );
        // High density (~37 neighbors): heavy congestion is expected, but
        // the run must stay sane and conserve its accounting.
        assert!((0.0..=1.0).contains(&r.group_metrics.delivery_rate));
        for m in &r.messages {
            assert!(m.delivered <= m.intended);
        }
    }
}
