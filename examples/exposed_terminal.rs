//! The exposed-terminal problem, demonstrated — the paper's concluding
//! future-work item: "no multicast MAC protocol has addressed the exposed
//! terminal problem."
//!
//! Topology: a line `A — B — C — D` (adjacent pairs in range, nothing
//! else). `B → A` and `C → D` are *compatible* transmissions: B's frame
//! cannot collide at D, and C's cannot collide at A. A perfect scheduler
//! would run them concurrently. Carrier sense doesn't know that: B and C
//! hear each other, each sees the medium busy while the other transmits,
//! and the exchanges serialize.
//!
//! ```text
//! cargo run --release --example exposed_terminal
//! ```

use rmm::mac::MacNode;
use rmm::prelude::*;

fn line() -> Topology {
    Topology::new(
        vec![
            Point::new(0.00, 0.5), // A
            Point::new(0.15, 0.5), // B
            Point::new(0.30, 0.5), // C
            Point::new(0.45, 0.5), // D
        ],
        0.2,
    )
}

fn main() {
    let topo = line();
    assert!(
        topo.in_range(NodeId(1), NodeId(2)),
        "B and C must hear each other"
    );
    assert!(!topo.in_range(NodeId(1), NodeId(3)), "B must not reach D");
    assert!(!topo.in_range(NodeId(2), NodeId(0)), "C must not reach A");

    let mut nodes = MacNode::build_network(&topo, ProtocolKind::Bmmm, MacTiming::default(), 3);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 3);
    engine.enable_trace();
    // Both exposed senders get a unicast at slot 0.
    nodes[1].enqueue(TrafficKind::Unicast, vec![NodeId(0)], 0); // B → A
    nodes[2].enqueue(TrafficKind::Unicast, vec![NodeId(3)], 0); // C → D
    engine.run(&mut nodes, 200);

    let done = |i: usize| match nodes[i].records()[0].outcome {
        Outcome::Completed(at) => at,
        other => panic!("exchange from node {i} did not complete: {other:?}"),
    };
    let (b_done, c_done) = (done(1), done(2));
    println!("B → A completed at slot {b_done}");
    println!("C → D completed at slot {c_done}");

    // One RTS/CTS/DATA/ACK exchange is 8 slots of airtime; had the two
    // run concurrently both would finish within ~16 slots of the start.
    // Instead the later one waits out the earlier one's whole exchange.
    let later = b_done.max(c_done);
    let earlier = b_done.min(c_done);
    println!(
        "serialization gap: the second exchange finished {} slots after the first",
        later - earlier
    );
    assert!(
        later >= earlier + 8,
        "expected the exposed transmissions to serialize"
    );
    println!(
        "\nBoth transfers were compatible (B⇸D, C⇸A), yet carrier sense at\n\
         the exposed senders serialized them — the inefficiency the paper\n\
         leaves to future work. A location-aware MAC could have recognized\n\
         the compatibility from the same beacon positions LAMM already uses."
    );
}
