//! Mobility demo: random-waypoint motion with beacon-learned (and
//! therefore stale) neighbor tables — how each reliable multicast
//! protocol degrades when the network it believes in lags the network
//! that exists.
//!
//! ```text
//! cargo run --release --example mobility [-- <runs>]
//! ```

use rmm::prelude::*;
use rmm::stats::Table;
use rmm::workload::{run_mobile, MobilityConfig};

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let scenario = Scenario {
        n_runs: runs as usize,
        sim_slots: 8_000,
        ..Scenario::default()
    };

    println!(
        "random waypoint, {} nodes, beacons every 500 slots, {} seed(s)\n",
        scenario.n_nodes, runs
    );
    let mut table = Table::new(["max speed", "BMMM rate", "LAMM rate", "BMW rate"]);
    for vmax in [0.0, 2e-5, 1e-4, 3e-4] {
        let config = MobilityConfig {
            speed_min: 0.0,
            speed_max: vmax,
            update_period: 100,
            beacon_period: 500,
        };
        let mut rates = Vec::new();
        for protocol in [ProtocolKind::Bmmm, ProtocolKind::Lamm, ProtocolKind::Bmw] {
            let mean: f64 = (0..runs)
                .map(|seed| {
                    run_mobile(&scenario, protocol, config, seed)
                        .group_metrics
                        .delivery_rate
                })
                .sum::<f64>()
                / runs as f64;
            rates.push(mean);
        }
        table.row([
            format!("{vmax:.0e}"),
            format!("{:.3}", rates[0]),
            format!("{:.3}", rates[1]),
            format!("{:.3}", rates[2]),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nAt 3e-4 units/slot a node crosses a whole transmission radius in
~700 slots, while beacons refresh every 500: senders routinely poll
ex-neighbors and burn their service timeout on them. The paper assumes
beacon-fresh neighbor sets; this is what relaxing that costs."
    );
}
