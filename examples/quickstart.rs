//! Quickstart: run the paper's default scenario once under BMMM and print
//! the three headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rmm::prelude::*;

fn main() {
    // The paper's Table 2 scenario: 100 nodes in a unit square, radius
    // 0.2, 10 000 slots, 5·10⁻⁴ msgs/node/slot with a 0.2/0.4/0.4
    // unicast/multicast/broadcast mix, 100-slot timeout, 90% reliability
    // threshold.
    let scenario = Scenario::default();

    println!(
        "topology : {} nodes, radius {}",
        scenario.n_nodes, scenario.radius
    );
    println!(
        "traffic  : {:.0e} msgs/node/slot over {} slots",
        scenario.msg_rate, scenario.sim_slots
    );
    println!();

    let result = run_one(&scenario, ProtocolKind::Bmmm, 1);

    println!("protocol : BMMM (Batch Mode Multicast MAC)");
    println!("mean degree                : {:.1}", result.mean_degree);
    println!(
        "multicast/broadcast msgs   : {}",
        result.group_metrics.messages
    );
    println!(
        "successful delivery rate   : {:.3}",
        result.group_metrics.delivery_rate
    );
    println!(
        "avg contention phases/msg  : {:.2}",
        result.group_metrics.avg_contention_phases
    );
    println!(
        "avg completion time (slots): {:.1}",
        result.group_metrics.avg_completion_time
    );
    println!("collisions observed        : {}", result.collisions);

    // The headline claim, checked live: the same scenario under BMW burns
    // far more contention phases.
    let bmw = run_one(&scenario, ProtocolKind::Bmw, 1);
    println!();
    println!(
        "BMW on the same topology: {:.2} contention phases/msg, delivery {:.3}",
        bmw.group_metrics.avg_contention_phases, bmw.group_metrics.delivery_rate
    );
    assert!(result.group_metrics.avg_contention_phases < bmw.group_metrics.avg_contention_phases);
    println!("=> BMMM consolidates contention phases, as the paper claims.");
}
