//! Protocol comparison: all six protocols on identical topologies and
//! traffic, averaged over several seeds — a miniature of the paper's
//! Section 7 evaluation.
//!
//! ```text
//! cargo run --release --example protocol_comparison [-- <runs> <slots>]
//! ```

use rmm::prelude::*;
use rmm::stats::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let slots: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);

    let scenario = Scenario {
        n_runs: runs,
        sim_slots: slots,
        ..Scenario::default()
    };
    println!(
        "comparing protocols: {} runs x {} slots, {} nodes, threshold {:.0}%\n",
        runs,
        slots,
        scenario.n_nodes,
        scenario.reliability_threshold * 100.0
    );

    let mut table = Table::new([
        "protocol",
        "delivery rate",
        "contention phases",
        "completion (slots)",
        "p95 completion",
        "reliable?",
    ]);
    let mut rows: Vec<(ProtocolKind, f64)> = Vec::new();
    for protocol in ProtocolKind::ALL {
        let results = run_many(&scenario, protocol);
        let m = rmm::workload::mean_group_metrics(&results);
        let completions: Vec<f64> = results
            .iter()
            .flat_map(|r| r.messages.iter())
            .filter(|msg| msg.is_group)
            .filter_map(|msg| msg.completion_time.map(|t| t as f64))
            .collect();
        let p95 = rmm::stats::percentile(&completions, 95.0);
        table.row([
            protocol.name().to_string(),
            format!("{:.3}", m.delivery_rate),
            format!("{:.2}", m.avg_contention_phases),
            format!("{:.1}", m.avg_completion_time),
            format!("{p95:.0}"),
            if protocol.is_reliable() { "yes" } else { "no" }.to_string(),
        ]);
        rows.push((protocol, m.delivery_rate));
    }
    print!("{}", table.render());

    let (best, _) = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("at least one protocol");
    println!("\nhighest delivery rate: {}", best.name());
    println!(
        "(the paper's ranking on delivery rate is LAMM > BMMM >> BSMA > BMW; \
         plain 802.11 completes fast but gives no delivery guarantee)"
    );
}
