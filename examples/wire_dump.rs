//! Wire-format demo: encode one BMMM exchange into its actual IEEE
//! 802.11 octets (including the paper's Figure-1 RAK frame) and dump it
//! as hex — the "no new frame formats" co-existence claim, made visible.
//!
//! ```text
//! cargo run --release --example wire_dump
//! ```

use rmm::prelude::*;
use rmm::sim::{decode_frame, encode_frame, Dest};

fn hex(octets: &[u8]) -> String {
    octets
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn show(label: &str, frame: &Frame) {
    // FHSS slot = 50 µs; 200 payload octets per data slot.
    let octets = encode_frame(frame, 50.0, 200);
    println!("{label:<22} ({:>3} octets)", octets.len());
    // Wrap the hex at 24 octets per line.
    for chunk in octets.chunks(24) {
        println!("    {}", hex(chunk));
    }
    let decoded = decode_frame(&octets).expect("round trip");
    println!(
        "    -> kind={:?} duration={}us ra={:?} ta={:?}\n",
        decoded.kind,
        decoded.duration_us,
        decoded.ra.node(),
        decoded.ta.and_then(|t| t.node()),
    );
}

fn main() {
    let timing = MacTiming::default();
    let sender = NodeId(0);
    let receivers = [NodeId(1), NodeId(2)];
    let msg = MsgId::new(sender, 7);
    let m = receivers.len();

    println!("one BMMM batch to {m} receivers, as 802.11 octets:\n");
    for (i, &r) in receivers.iter().enumerate() {
        show(
            &format!("RTS -> {r} (poll {})", i + 1),
            &Frame::control(
                FrameKind::Rts,
                sender,
                Dest::Node(r),
                timing.bmmm_rts_duration(i, m),
                msg,
            ),
        );
        show(
            &format!("CTS <- {r}"),
            &Frame::control(
                FrameKind::Cts,
                r,
                Dest::Node(sender),
                timing.bmmm_rts_duration(i, m) - timing.control_slots,
                msg,
            ),
        );
    }
    show(
        "DATA -> group",
        &Frame::data(
            sender,
            Dest::group(receivers.to_vec()),
            timing.bmmm_data_duration(m),
            msg,
            timing.data_slots,
        ),
    );
    for (i, &r) in receivers.iter().enumerate() {
        show(
            &format!("RAK -> {r}"),
            &Frame::control(
                FrameKind::Rak,
                sender,
                Dest::Node(r),
                timing.bmmm_rak_duration(i, m),
                msg,
            ),
        );
        show(
            &format!("ACK <- {r}"),
            &Frame::control(
                FrameKind::Ack,
                r,
                Dest::Node(sender),
                timing.bmmm_rak_duration(i, m) - timing.control_slots,
                msg,
            ),
        );
    }
    println!(
        "RAK reuses the 14-octet ACK layout (frame control, Duration, RA,\n\
         FCS) under a reserved control subtype — stock 802.11 stations parse\n\
         it as an unknown control frame and simply honor its Duration field,\n\
         which is exactly what co-existence requires."
    );
}
