//! Route discovery over the multicast MAC — the workload the paper's
//! introduction motivates (AODV/DSR route requests are MAC broadcasts).
//!
//! Floods an AODV-style RREQ across a 100-node network toward a target
//! several hops away, with the paper's background traffic competing for
//! the medium, once per MAC protocol. Plain 802.11 drops flood branches
//! silently; the reliable protocols trade latency for reach.
//!
//! ```text
//! cargo run --release --example route_discovery [-- <trials> <rate> <nodes>]
//! ```

use rmm::prelude::*;
use rmm::route::{DiscoveryConfig, RouteSim};
use rmm::stats::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let rate: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1e-3);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    let scenario = Scenario {
        msg_rate: rate,
        n_nodes: nodes,
        ..Scenario::default()
    };
    println!(
        "RREQ flooding: {} nodes, ≥3-hop targets, background rate {rate:.0e}, {trials} trials\n",
        scenario.n_nodes
    );

    let mut table = Table::new([
        "protocol",
        "discovery rate",
        "latency (slots)",
        "rebroadcasts",
        "coverage",
    ]);
    for protocol in [
        ProtocolKind::Ieee80211,
        ProtocolKind::Bsma,
        ProtocolKind::Bmw,
        ProtocolKind::Bmmm,
        ProtocolKind::Lamm,
    ] {
        let mut reached = 0u64;
        let mut latency_sum = 0.0;
        let mut latency_n = 0u64;
        let mut rebroadcasts = 0.0;
        let mut coverage = 0.0;
        for seed in 0..trials {
            let mut sim = RouteSim::new(&scenario, protocol, seed);
            let Some((origin, target)) = sim.pick_distant_pair(3) else {
                continue;
            };
            let r = sim.discover(origin, target, DiscoveryConfig::default());
            if r.reached {
                reached += 1;
                latency_sum += r.latency.unwrap() as f64;
                latency_n += 1;
            }
            rebroadcasts += f64::from(r.rebroadcasts);
            coverage += r.coverage as f64;
        }
        table.row([
            protocol.name().to_string(),
            format!("{:.2}", reached as f64 / trials as f64),
            if latency_n > 0 {
                format!("{:.0}", latency_sum / latency_n as f64)
            } else {
                "—".to_string()
            },
            format!("{:.1}", rebroadcasts / trials as f64),
            format!("{:.1}", coverage / trials as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nTwo effects compete. Each hop is only as reliable as the MAC\n\
         broadcast under it — lost branches silently amputate an 802.11\n\
         flood — but dense networks give floods redundant paths, and the\n\
         reliable protocols' per-hop control traffic feeds the broadcast\n\
         storm (Ni et al., which the paper cites). Sparse networks (try\n\
         40 nodes) are where reliable MAC broadcast earns its keep;\n\
         BSMA's CTS pile-ups make it the worst of both worlds here."
    );
}
