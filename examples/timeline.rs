//! Frame-level timeline (the paper's Figure 2): watch BMW and BMMM serve
//! the same multicast on a clean channel, frame by frame.
//!
//! ```text
//! cargo run --release --example timeline [-- <receivers>]
//! ```

use rmm::prelude::*;

fn star(n: usize) -> Topology {
    let mut pts = vec![Point::new(0.5, 0.5)];
    for i in 0..n {
        let a = i as f64 * std::f64::consts::TAU / n as f64;
        pts.push(Point::new(0.5 + 0.05 * a.cos(), 0.5 + 0.05 * a.sin()));
    }
    Topology::new(pts, 0.2)
}

fn show(protocol: ProtocolKind, n: usize) -> u64 {
    let topo = star(n);
    let mut nodes = rmm::mac::MacNode::build_network(&topo, protocol, MacTiming::default(), 2);
    let mut engine = Engine::new(topo, Capture::ZorziRao, 2);
    engine.enable_trace();
    let receivers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
    nodes[0].enqueue(TrafficKind::Multicast, receivers, 0);
    engine.run(&mut nodes, 2_000);

    println!("--- {} ---", protocol.name());
    print!(
        "{}",
        engine.trace().expect("trace enabled").render_timeline()
    );
    let rec = &nodes[0].records()[0];
    let done = match rec.outcome {
        Outcome::Completed(at) => at,
        other => panic!("expected completion on a clean channel, got {other:?}"),
    };
    println!(
        "completed at slot {done} using {} contention phase(s)\n",
        rec.contention_phases
    );
    done
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    println!("one multicast to {n} receivers, clean channel\n");
    let bmw = show(ProtocolKind::Bmw, n);
    let bmmm = show(ProtocolKind::Bmmm, n);
    println!(
        "BMMM finished {} slots earlier than BMW ({bmmm} vs {bmw}) — the \
         batch replaces {n} contention phases with 1 plus {n} RAK frames.",
        bmw - bmmm
    );
}
