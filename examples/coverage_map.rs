//! Location-aware geometry demo: place receivers around a sender, compute
//! the minimum cover set (LAMM's `MCS`) and render an ASCII map showing
//! who gets polled and who is closed by coverage (Theorem 3).
//!
//! ```text
//! cargo run --release --example coverage_map [-- <receivers> <seed>]
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmm::geom::{covers_disk, min_cover_set, Point};

const R: f64 = 0.2;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);

    // Receivers uniform in the sender's coverage disk.
    let mut rng = SmallRng::seed_from_u64(seed);
    let sender = Point::new(0.5, 0.5);
    let pts: Vec<Point> = (0..n)
        .map(|_| loop {
            let dx = rng.random_range(-R..=R);
            let dy = rng.random_range(-R..=R);
            if dx * dx + dy * dy <= R * R {
                break sender.offset(dx, dy);
            }
        })
        .collect();

    let set: Vec<usize> = (0..n).collect();
    let mcs = min_cover_set(&pts, &set, R);

    println!(
        "sender at ({:.2}, {:.2}), {} receivers, radius {R}",
        sender.x, sender.y, n
    );
    println!("minimum cover set: {} of {} receivers\n", mcs.len(), n);
    for (i, p) in pts.iter().enumerate() {
        let polled = mcs.contains(&i);
        let covered = covers_disk(p, &mcs.iter().map(|&j| pts[j]).collect::<Vec<_>>(), R);
        println!(
            "  receiver {i:>2} at ({:.3}, {:.3})  {}",
            p.x,
            p.y,
            if polled {
                "POLLED (in MCS — must CTS and ACK)"
            } else if covered {
                "covered (Theorem 3: ACKs of the MCS prove its delivery)"
            } else {
                "UNCOVERED (would stay in S for the next round)"
            }
        );
    }

    // ASCII map: 33x17 grid over the sender's disk.
    println!("\nmap ('S' sender, 'P' polled, 'c' covered, '?' uncovered):");
    let (w, h) = (33i32, 17i32);
    for row in 0..h {
        let mut line = String::new();
        for col in 0..w {
            let x = sender.x - R + 2.0 * R * f64::from(col) / f64::from(w - 1);
            let y = sender.y + R - 2.0 * R * f64::from(row) / f64::from(h - 1);
            let cell = Point::new(x, y);
            let mut ch = if cell.within(&sender, R) { '.' } else { ' ' };
            if cell.within(&sender, 0.012) {
                ch = 'S';
            }
            for (i, p) in pts.iter().enumerate() {
                if cell.within(p, 0.012) {
                    ch = if mcs.contains(&i) {
                        'P'
                    } else if covers_disk(p, &mcs.iter().map(|&j| pts[j]).collect::<Vec<_>>(), R) {
                        'c'
                    } else {
                        '?'
                    };
                }
            }
            line.push(ch);
        }
        println!("  {line}");
    }
    println!(
        "\nLAMM sends {} RTS/RAK pairs instead of {} — {:.0}% fewer control frames.",
        mcs.len(),
        n,
        100.0 * (1.0 - mcs.len() as f64 / n as f64)
    );
}
